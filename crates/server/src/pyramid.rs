//! Pyramid fast-broadcasting backend: channel-transition-invariant
//! broadcast delivery (arXiv:1711.08118 lineage).
//!
//! Each hosted movie permanently occupies `k` disk streams — one per
//! geometric segment channel of its [`PyramidGeometry`] — and one
//! staging segment per channel ([`BroadcastSlot`]). Channels loop their
//! segments phase-locked to the global clock; clients join at the next
//! segment-1 boundary (startup wait ≤ one segment-1 period, scheduled on
//! the shared `TimerWheel`), record all channels concurrently, and play
//! from their local prefix. Server cost is therefore **load-invariant**:
//! `Σn = Σk + reserve`, `ΣB = Σk` staging segments, no matter how many
//! viewers arrive — the scheme trades the batching design's server-side
//! partitions for client-side buffer (the bound
//! [`PyramidGeometry::client_buffer_bound`] is reported by the bench).
//!
//! VCR follows the interactive-bandwidth accounting of arXiv:1706.06642:
//! RW and Pause resume inside the received prefix and are always hits
//! (they cost nothing); FF beyond the reception front needs a dedicated
//! stream from the same [`StreamReserve`] the batching server uses, and
//! the session merges back into the broadcast as soon as the front
//! catches up to its position.
//!
//! # Fault semantics (chaos-grade, per channel)
//!
//! Faults degrade **channels**, never whole movies. A channel is *on the
//! air* for a tick iff its lease is live, the disk is serving (slowdowns
//! blank off-period ticks), and its staging slot is funded (a
//! buffer-shrink overcommit defunds slots from the global tail, in
//! deterministic order). A channel whose scheduled **real** minute is
//! not on the air stalls only that delivery — other channels keep
//! broadcasting, and clients keep free playback inside their
//! already-received prefix; a broken channel stalls exactly the sessions
//! whose playout front has crossed into its segment. Because each
//! channel loops phase-locked to the global clock, every stall is
//! boundary-aligned by construction: recovery rejoins the wheel
//! mid-cycle and the missed minutes return on their next loop.
//!
//! Reception bookkeeping is **exact**: each session carries a
//! [`ReceptionFront`] bitmap fed by the minutes actually staged, so the
//! bookkept front can never lead the truly-broadcast front (the
//! conservative per-movie-freeze model of PR 7 could lead by up to
//! `d − 1` after recovery; the regression test
//! `recovered_front_never_leads_schedule` pins the fix). A session that
//! outruns its front (fault stall or revoked catch-up lease) enters
//! `Starved` and follows the [`DegradePolicy`] ledger: bounded re-wait,
//! dedicated-stream retries under exponential backoff whose denials are
//! classified at resolution time (transient when a retry eventually
//! succeeds, permanent when the session rejoins free or times out), and
//! after the retry timeout a plain wait for the looping broadcast front
//! — which reaches every position once the channels are back.

use std::collections::BTreeMap;

use vod_runtime::{
    Arena, BackendKind, DegradePolicy, FaultKind, FaultPlan, PyramidGeometry, ReceptionFront,
    RuntimeMetrics, StreamReserve, TimerWheel,
};
use vod_workload::{TimeWeighted, VcrKind, Welford};

use crate::backend::{Adoption, DeliveryBackend};
use crate::buffer::{BroadcastSlot, BufferPool};
use crate::content::{verify_segment, MovieId};
use crate::disk::{DiskSubsystem, StreamLease};
use crate::metrics::ServerMetrics;
use crate::server::{ServerConfig, ServerError};
use crate::session::{DeliveryStats, SessionId, SessionStatus};

/// One hosted movie's broadcast apparatus.
struct PyramidMovie {
    movie: MovieId,
    geometry: PyramidGeometry,
    /// One lease per channel; `None` while a fault holds the channel
    /// down (only that channel's deliveries stall).
    leases: Vec<Option<StreamLease>>,
    /// One staging segment per channel (the minute being broadcast).
    slots: Vec<BroadcastSlot>,
    /// Per-channel count of ticks the channel's scheduled *real* minute
    /// was not broadcast (dead lease, off-period slowdown tick, or
    /// unfunded staging slot). Phase-locked to the wheel: padding slots
    /// never count.
    channel_stall: Vec<u64>,
}

/// Per-session state machine of the broadcast backend.
enum PState {
    /// Scheduled to start receiving at the next segment-1 boundary.
    Waiting { start_at: u64 },
    /// Receiving all channels; consuming one minute per tick from the
    /// local prefix.
    Receiving,
    /// Mid FF/RW sweep at the configured VCR rate. Holds a dedicated
    /// lease only when the sweep runs beyond the reception front.
    Vcr { kind: VcrKind, remaining: u32 },
    /// Paused; reception continues (the front keeps growing).
    Paused { remaining: u32 },
    /// Playing beyond the front through a dedicated lease; merges back
    /// into the broadcast when the front catches up.
    CatchUp,
    /// Outran the reception front with no dedicated stream. Follows the
    /// [`DegradePolicy`] ledger: bounded re-wait, then backoff retries
    /// with resolution-time denial classification, then (post-timeout) a
    /// plain wait for the looping front. Rejoins free the moment the
    /// front passes its position.
    Starved {
        /// Tick the starvation began (timeout anchor).
        since: u64,
        /// Next tick a dedicated retry is allowed.
        next_retry: u64,
        /// Current backoff interval in ticks.
        backoff: u64,
        /// Refused acquisitions awaiting resolution-time classification.
        pending_denials: u64,
        /// Past `retry_timeout`: no more dedicated retries.
        retries_exhausted: bool,
    },
    /// Finished.
    Done,
}

struct PSession {
    movie_idx: usize,
    position: u32,
    /// Exact reception bookkeeping: every minute this client's recorder
    /// actually saw staged, and the contiguous front derived from it.
    rx: ReceptionFront,
    state: PState,
    lease: Option<StreamLease>,
    stats: DeliveryStats,
}

/// Fresh `Starved` state under `policy`, carrying `pending` denials
/// already awaiting classification (1 when a refused acquisition caused
/// the starvation, 0 when a fault revoked the lease outright).
fn starved_state(now: u64, policy: &DegradePolicy, pending: u64) -> PState {
    PState::Starved {
        since: now,
        next_retry: now + policy.rewait_bound.max(1),
        backoff: policy.retry_backoff.max(1),
        pending_denials: pending,
        retries_exhausted: false,
    }
}

/// The pyramid fast-broadcasting backend. See the module docs.
pub struct PyramidServer {
    now: u64,
    config: ServerConfig,
    disk: DiskSubsystem,
    pool: BufferPool,
    movies: Vec<PyramidMovie>,
    /// Dedicated-stream accountant for FF-beyond-front service; capacity
    /// is whatever the channel pre-allocation leaves over, mirroring the
    /// batching server's reserve derivation.
    reserve: StreamReserve,
    sessions: Arena<PSession>,
    /// Waiting-session wakeups keyed by their boundary tick.
    wakeups: TimerWheel<u32>,
    /// Indices of sessions past Waiting and not yet Done, ascending.
    active: Vec<u32>,
    metrics: ServerMetrics,
    movie_index: BTreeMap<MovieId, usize>,
    startup_waits: Welford,
    plan: FaultPlan,
    fault_mode: bool,
    policy: DegradePolicy,
    slowdown: Option<(u32, u64)>,
    recovery_due: BTreeMap<u64, u32>,
    /// Tick of the most recent recovery that returned streams; a starved
    /// retry timeout expiring on this exact tick attempts one last lease
    /// first — recovery wins the same-tick race.
    recovered_at: Option<u64>,
    starved_count: u32,
}

impl PyramidServer {
    /// Build the broadcast backend from the shared config: per movie,
    /// the smallest channel count whose segment-1 period does not exceed
    /// the movie's batching `max_wait` (same worst-case startup promise,
    /// different delivery mechanism).
    pub fn new(config: ServerConfig) -> Self {
        let mut disk = DiskSubsystem::new(config.disk_streams);
        let mut movie_index = BTreeMap::new();
        let mut movies = Vec::with_capacity(config.movies.len());
        let mut metrics = ServerMetrics::new();
        let mut total_channels: u32 = 0;
        for (i, m) in config.movies.iter().enumerate() {
            let length = m.geometry.length;
            disk.register_movie(m.movie, length);
            movie_index.insert(m.movie, i);
            let geometry = PyramidGeometry::for_target_wait(length, m.geometry.max_wait());
            let mut leases = Vec::with_capacity(geometry.channels() as usize);
            let mut slots = Vec::with_capacity(geometry.channels() as usize);
            for _ in 0..geometry.channels() {
                // A config whose stream pool cannot even cover the
                // channel pre-allocation is a sizing bug; the channel
                // stays down (the movie stalls) rather than panicking.
                leases.push(disk.acquire().ok());
                slots.push(BroadcastSlot::new(m.movie));
            }
            total_channels += geometry.channels();
            let channel_stall = vec![0; geometry.channels() as usize];
            movies.push(PyramidMovie {
                movie: m.movie,
                geometry,
                leases,
                slots,
                channel_stall,
            });
        }
        // Staging budget: exactly one segment per channel. This *is* the
        // backend's `ΣB`.
        let mut pool = BufferPool::new(total_channels as usize);
        let _ = pool.reserve(total_channels as usize);
        metrics.playback = TimeWeighted::new(0.0, f64::from(disk.in_use()));
        let reserve =
            StreamReserve::with_capacity(config.disk_streams.saturating_sub(total_channels));
        Self {
            now: 0,
            config,
            disk,
            pool,
            movies,
            reserve,
            sessions: Arena::new(),
            wakeups: TimerWheel::new(),
            active: Vec::new(),
            metrics,
            movie_index,
            startup_waits: Welford::default(),
            plan: FaultPlan::empty(),
            fault_mode: false,
            policy: DegradePolicy::default(),
            slowdown: None,
            recovery_due: BTreeMap::new(),
            recovered_at: None,
            starved_count: 0,
        }
    }

    /// Acquire a dedicated (beyond-front) lease from the reserve.
    fn try_dedicated_lease(&mut self) -> Option<StreamLease> {
        self.metrics.runtime.acquisition_attempts += 1;
        let now = self.now as f64;
        if !self.reserve.try_acquire(now) {
            return None;
        }
        match self.disk.acquire() {
            Ok(lease) => Some(lease),
            Err(_) => {
                self.reserve.release(now);
                None
            }
        }
    }

    fn release_dedicated_lease(&mut self, lease: StreamLease) {
        self.disk.release(lease);
        self.reserve.release(self.now as f64);
    }

    /// Apply fault events scheduled at the current tick.
    fn apply_faults(&mut self) {
        if !self.fault_mode {
            return;
        }
        if let Some(streams) = self.recovery_due.remove(&self.now) {
            let recovered = self.disk.recover_streams(streams);
            self.reserve.recover_streams(recovered);
            if recovered > 0 {
                self.recovered_at = Some(self.now);
            }
        }
        let events: Vec<FaultKind> = self
            .plan
            .events_at(self.now)
            .iter()
            .map(|e| e.kind)
            .collect();
        for kind in events {
            match kind {
                FaultKind::DiskStreamLoss { count } | FaultKind::DiskOutage { count, .. } => {
                    let before = self.disk.failed();
                    let revoked = self.disk.fail_streams(count);
                    let applied = self.disk.failed().saturating_sub(before);
                    if let FaultKind::DiskOutage { recover_after, .. } = kind {
                        *self
                            .recovery_due
                            .entry(self.now + recover_after)
                            .or_insert(0) += applied;
                    }
                    let mut channels_lost: u32 = 0;
                    for m in &mut self.movies {
                        for lease in m.leases.iter_mut() {
                            if lease.as_ref().is_some_and(|l| revoked.contains(&l.id())) {
                                *lease = None;
                                channels_lost += 1;
                                self.metrics.leases_revoked += 1;
                            }
                        }
                    }
                    self.metrics
                        .playback
                        .add(self.now as f64, -f64::from(channels_lost));
                    let now = self.now;
                    let policy = self.policy;
                    for idx in 0..self.sessions.slot_count() {
                        let Some(sess) = self.sessions.at_mut(idx) else {
                            continue;
                        };
                        let dead = sess
                            .lease
                            .as_ref()
                            .is_some_and(|l| revoked.contains(&l.id()));
                        if dead {
                            sess.lease = None;
                            if matches!(sess.state, PState::Vcr { .. }) {
                                self.metrics.sweeps_aborted += 1;
                            }
                            if !matches!(sess.state, PState::Done) {
                                // Revocation, not a refused acquisition:
                                // nothing pending to classify yet.
                                sess.state = starved_state(now, &policy, 0);
                                self.starved_count += 1;
                                self.metrics.runtime.degraded_entries += 1;
                            }
                            self.metrics.leases_revoked += 1;
                            self.reserve.release(self.now as f64);
                        }
                    }
                    self.reserve
                        .fail_streams(applied.saturating_sub(channels_lost));
                    self.metrics.runtime.faults_injected += 1;
                }
                FaultKind::DiskSlowdown { period, duration } => {
                    self.slowdown = Some((period.max(1), self.now + duration));
                    self.metrics.runtime.faults_injected += 1;
                }
                FaultKind::BufferShrink { segments } => {
                    self.pool.shrink(segments as usize);
                    self.metrics.runtime.faults_injected += 1;
                }
                FaultKind::BufferRestore { segments } => {
                    self.pool.grow(segments as usize);
                    self.metrics.runtime.faults_injected += 1;
                }
                // Whole-shard events belong to the federation front
                // tier; below it they are inert and uncounted.
                FaultKind::ShardOutage { .. } | FaultKind::ShardRecovery { .. } => {}
            }
        }
        if let Some((_, until)) = self.slowdown {
            if self.now >= until {
                self.slowdown = None;
            }
        }
    }

    fn disk_serving(&self) -> bool {
        match self.slowdown {
            Some((period, until)) if self.now < until => self.now.is_multiple_of(u64::from(period)),
            _ => true,
        }
    }

    /// Broadcast phase: re-acquire dead channels, then stage each
    /// channel's scheduled minute independently. A channel is *on the
    /// air* for this tick iff its lease is live, the disk is serving
    /// (slowdowns blank off-period ticks for every channel at once), and
    /// its staging slot is funded — a buffer-shrink overcommit of `o`
    /// segments defunds the last `o` slots in global (movie, channel)
    /// order, so which channels a squeeze silences is deterministic. An
    /// off-air channel whose scheduled minute is *real* counts one
    /// boundary-aligned stall tick against that channel alone; padding
    /// minutes never count.
    fn broadcast(&mut self) {
        let serving = self.disk_serving();
        let total: usize = self.movies.iter().map(|m| m.slots.len()).sum();
        let funded = total.saturating_sub(self.pool.overcommitted());
        let mut slot_index: usize = 0;
        for mi in 0..self.movies.len() {
            let mut restored: u32 = 0;
            for ci in 0..self.movies[mi].leases.len() {
                if self.movies[mi].leases[ci].is_none() {
                    if let Ok(lease) = self.disk.acquire() {
                        self.movies[mi].leases[ci] = Some(lease);
                        restored += 1;
                    }
                }
            }
            if restored > 0 {
                self.metrics
                    .playback
                    .add(self.now as f64, f64::from(restored));
            }
            let m = &mut self.movies[mi];
            for ci in 0..m.leases.len() {
                let slot_funded = slot_index < funded;
                slot_index += 1;
                let Some(minute) = m.geometry.broadcast_minute(ci as u32, self.now) else {
                    // Padding tick: nothing real was scheduled here.
                    m.slots[ci].clear();
                    continue;
                };
                if !serving || !slot_funded || m.leases[ci].is_none() {
                    m.slots[ci].clear();
                    m.channel_stall[ci] += 1;
                    continue;
                }
                // vod-lint: allow(no-panic) — the on-air check above
                // guarantees this channel's lease is live.
                let lease = m.leases[ci].as_ref().expect("channel lease live");
                match self.disk.read(lease, m.movie, minute) {
                    Ok(seg) => {
                        if !verify_segment(&seg) {
                            self.metrics.verify_failures += 1;
                        }
                        m.slots[ci].store(seg);
                    }
                    Err(_) => {
                        m.slots[ci].clear();
                        m.channel_stall[ci] += 1;
                    }
                }
            }
        }
    }

    /// Deliver minute `position` to a receiving session from the
    /// broadcast: byte-verify through the staging slot when that exact
    /// minute is on the air this tick, otherwise from the client's local
    /// prefix (canonical bytes, re-verified).
    fn consume_from_broadcast(&mut self, idx: u32) {
        let (movie_idx, position) = {
            let sess = self.sessions.live_at(idx as usize);
            (sess.movie_idx, sess.position)
        };
        let m = &self.movies[movie_idx];
        let channel = m.geometry.channel_of(position) as usize;
        let verified = match m.slots.get(channel).and_then(|s| s.current()) {
            Some(seg) if seg.index == position => verify_segment(seg),
            _ => {
                // Client-buffered replay: the segment was verified at
                // reception; re-derive and re-verify the canonical bytes.
                verify_segment(&crate::content::generate_segment(m.movie, position))
            }
        };
        let sess = self.sessions.live_at_mut(idx as usize);
        sess.stats.from_buffer += 1;
        if !verified {
            sess.stats.verify_failures += 1;
            self.metrics.verify_failures += 1;
        }
        sess.position += 1;
        self.metrics.runtime.buffer_minutes += 1.0;
    }

    /// Retire a finished session.
    fn finish(&mut self, idx: u32) {
        let lease = {
            let sess = self.sessions.live_at_mut(idx as usize);
            sess.state = PState::Done;
            sess.lease.take()
        };
        if let Some(lease) = lease {
            self.release_dedicated_lease(lease);
        }
        self.metrics.sessions_done += 1;
    }
}

impl DeliveryBackend for PyramidServer {
    fn kind(&self) -> BackendKind {
        BackendKind::PyramidBroadcast
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn open_session(&mut self, movie: MovieId) -> Result<SessionId, ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        let geometry = self.movies[movie_idx].geometry;
        let wait = geometry.startup_wait(self.now);
        self.startup_waits.push(wait as f64);
        let state = if wait == 0 {
            PState::Receiving
        } else {
            PState::Waiting {
                start_at: self.now + wait,
            }
        };
        let starts_now = wait == 0;
        let id = SessionId(self.sessions.insert(PSession {
            movie_idx,
            position: 0,
            rx: ReceptionFront::new(geometry.length()),
            state,
            lease: None,
            stats: DeliveryStats::default(),
        }));
        let idx = id.0.index() as u32;
        if starts_now {
            self.active.push(idx);
        } else {
            self.wakeups.schedule(self.now + wait, idx);
        }
        Ok(id)
    }

    fn request_vcr(
        &mut self,
        id: SessionId,
        kind: VcrKind,
        magnitude: u32,
    ) -> Result<(), ServerError> {
        let (movie_idx, position, has_lease, state_ok) = {
            let sess = self
                .sessions
                .get(id.0)
                .ok_or(ServerError::UnknownSession(id))?;
            let ok = matches!(sess.state, PState::Receiving | PState::CatchUp);
            (sess.movie_idx, sess.position, sess.lease.is_some(), ok)
        };
        if !state_ok {
            return Err(ServerError::InvalidState { operation: "vcr" });
        }
        let geometry = self.movies[movie_idx].geometry;
        let length = geometry.length();
        // FF beyond the reception front costs a dedicated stream
        // (interactive-bandwidth accounting); everything else plays from
        // the client's prefix for free.
        if matches!(kind, VcrKind::FastForward) && !has_lease {
            let target = position.saturating_add(magnitude).min(length);
            let beyond_front = target < length && !self.sessions.live(id.0).rx.received(target);
            if beyond_front {
                match self.try_dedicated_lease() {
                    Some(lease) => self.sessions.live_mut(id.0).lease = Some(lease),
                    None => {
                        self.metrics.runtime.vcr_denied += 1;
                        // Issue-time Erlang loss: the viewer stays in the
                        // broadcast and never retries this request.
                        self.reserve.record_denials(1, false);
                        return Err(ServerError::VcrDenied);
                    }
                }
            }
        }
        if matches!(kind, VcrKind::FastForward) && position.saturating_add(magnitude) >= length {
            // The sweep will run off the end; the lease (if any) rides
            // along until `finish` releases it.
        }
        if matches!(kind, VcrKind::Rewind) && magnitude >= position {
            self.metrics.runtime.rw_truncated += 1;
        }
        let sess = self.sessions.live_mut(id.0);
        match kind {
            VcrKind::Pause => {
                sess.state = PState::Paused {
                    remaining: magnitude.max(1),
                };
                // A paused viewer keeps receiving but consumes no
                // dedicated bandwidth.
                if let Some(lease) = sess.lease.take() {
                    self.release_dedicated_lease(lease);
                }
            }
            VcrKind::FastForward | VcrKind::Rewind => {
                sess.state = PState::Vcr {
                    kind,
                    remaining: magnitude.max(1),
                };
            }
        }
        Ok(())
    }

    fn session_status(&self, id: SessionId) -> Result<SessionStatus, ServerError> {
        let sess = self
            .sessions
            .get(id.0)
            .ok_or(ServerError::UnknownSession(id))?;
        Ok(match sess.state {
            PState::Waiting { start_at } => SessionStatus::Waiting(start_at),
            PState::Receiving => SessionStatus::Shared,
            PState::Vcr { .. } | PState::Paused { .. } => SessionStatus::InVcr,
            PState::CatchUp => SessionStatus::Dedicated,
            PState::Starved { .. } => SessionStatus::Degraded,
            PState::Done => SessionStatus::Done,
        })
    }

    fn session_position(&self, id: SessionId) -> Result<u32, ServerError> {
        let sess = self
            .sessions
            .get(id.0)
            .ok_or(ServerError::UnknownSession(id))?;
        Ok(sess.position)
    }

    fn adopt_session(
        &mut self,
        movie: MovieId,
        position: u32,
    ) -> Result<(SessionId, Adoption), ServerError> {
        let movie_idx = *self
            .movie_index
            .get(&movie)
            .ok_or(ServerError::UnknownMovie(movie))?;
        let geometry = self.movies[movie_idx].geometry;
        if position >= geometry.length() {
            return Err(ServerError::InvalidState { operation: "adopt" });
        }
        // A broadcast client assembles its prefix from the channels it
        // has been recording since it joined; an adopted session arrives
        // with an empty local prefix, so mid-movie playback can only be
        // served from the dedicated reserve. The session plays catch-up
        // on the lease and merges into the broadcast once its (fresh)
        // reception front sweeps past its position — the looping
        // channels guarantee that eventually happens.
        let lease = match self.try_dedicated_lease() {
            Some(lease) => lease,
            None => {
                self.metrics.runtime.vcr_denied += 1;
                self.reserve.record_denials(1, false);
                return Err(ServerError::VcrDenied);
            }
        };
        let id = SessionId(self.sessions.insert(PSession {
            movie_idx,
            position,
            rx: ReceptionFront::new(geometry.length()),
            state: PState::CatchUp,
            lease: Some(lease),
            stats: DeliveryStats::default(),
        }));
        self.active.push(id.0.index() as u32);
        Ok((id, Adoption::DedicatedStream))
    }

    fn tick(&mut self) {
        self.apply_faults();
        self.broadcast();
        // Boundary joins: sessions whose segment-1 boundary is this tick
        // start receiving now.
        for idx in self.wakeups.drain_tick(self.now) {
            let sess = self.sessions.live_at_mut(idx as usize);
            if matches!(sess.state, PState::Waiting { .. }) {
                sess.state = PState::Receiving;
                self.active.push(idx);
            }
        }
        // Reception: every active session's recorder sees exactly the
        // minutes staged this tick, so a bookkept front can never lead
        // the truly-broadcast one — channels a fault holds off the air
        // leave holes that fill on their next loop.
        let staged: Vec<Vec<u32>> = self
            .movies
            .iter()
            .map(|m| {
                m.slots
                    .iter()
                    .filter_map(|s| s.current().map(|seg| seg.index))
                    .collect()
            })
            .collect();
        for &idx in &self.active {
            let sess = self.sessions.live_at_mut(idx as usize);
            for &minute in &staged[sess.movie_idx] {
                sess.rx.record(minute);
            }
        }
        let now = self.now;
        let policy = self.policy;
        let vcr_rate = self.config.vcr_rate.max(1);
        let mut i = 0;
        while i < self.active.len() {
            let idx = self.active[i];
            let movie_idx = self.sessions.live_at(idx as usize).movie_idx;
            let length = self.movies[movie_idx].geometry.length();
            let state_tag = {
                let sess = self.sessions.live_at(idx as usize);
                match sess.state {
                    PState::Receiving => 0u8,
                    PState::Vcr { .. } => 1,
                    PState::Paused { .. } => 2,
                    PState::CatchUp => 3,
                    PState::Starved { .. } => 4,
                    PState::Waiting { .. } | PState::Done => 5,
                }
            };
            match state_tag {
                0 => {
                    let (position, playable) = {
                        let sess = self.sessions.live_at(idx as usize);
                        (sess.position, sess.rx.received(sess.position))
                    };
                    if position >= length {
                        self.finish(idx);
                        self.active.swap_remove(i);
                        continue;
                    }
                    if playable {
                        self.consume_from_broadcast(idx);
                        if self.sessions.live_at(idx as usize).position >= length {
                            self.finish(idx);
                            self.active.swap_remove(i);
                            continue;
                        }
                    } else {
                        // The playout front crossed into a segment some
                        // off-air channel still owes: only this session
                        // stalls (unreachable fault-free, by
                        // channel-transition invariance).
                        self.metrics.runtime.stall_minutes += 1.0;
                    }
                }
                1 => {
                    let sess = self.sessions.live_at_mut(idx as usize);
                    let PState::Vcr { kind, remaining } = &mut sess.state else {
                        unreachable!("state tag checked above");
                    };
                    let kind = *kind;
                    let step = vcr_rate.min(*remaining);
                    *remaining -= step;
                    let sweep_done = *remaining == 0;
                    match kind {
                        VcrKind::FastForward => {
                            sess.position = sess.position.saturating_add(step).min(length);
                        }
                        VcrKind::Rewind => {
                            sess.position = sess.position.saturating_sub(step);
                        }
                        VcrKind::Pause => unreachable!("pause never enters Vcr"),
                    }
                    let has_lease = sess.lease.is_some();
                    let reached_end = sess.position >= length;
                    if has_lease {
                        // The dedicated stream actively serves the sweep.
                        self.metrics.runtime.disk_minutes += 1.0;
                        self.sessions.live_at_mut(idx as usize).stats.from_disk += 1;
                    }
                    if reached_end {
                        self.metrics.runtime.ff_end += 1;
                        self.metrics.runtime.record_resume(kind, true);
                        self.finish(idx);
                        self.active.swap_remove(i);
                        continue;
                    }
                    if sweep_done {
                        let (hit, has_lease) = {
                            let sess = self.sessions.live_at(idx as usize);
                            (sess.rx.received(sess.position), sess.lease.is_some())
                        };
                        self.metrics.runtime.record_resume(kind, hit);
                        if hit {
                            let lease = self.sessions.live_at_mut(idx as usize).lease.take();
                            if let Some(lease) = lease {
                                self.release_dedicated_lease(lease);
                                self.metrics.piggyback_merges += 1;
                            }
                            self.sessions.live_at_mut(idx as usize).state = PState::Receiving;
                        } else if has_lease {
                            self.sessions.live_at_mut(idx as usize).state = PState::CatchUp;
                        } else {
                            // Only reachable through fault stalls: the
                            // issue-time classification said the target
                            // was received, the exact front now
                            // disagrees.
                            match self.try_dedicated_lease() {
                                Some(lease) => {
                                    let sess = self.sessions.live_at_mut(idx as usize);
                                    sess.lease = Some(lease);
                                    sess.state = PState::CatchUp;
                                }
                                None => {
                                    // The refusal enters the degrade
                                    // ledger as pending; it is classified
                                    // transient/permanent at resolution.
                                    self.metrics.runtime.resume_starved += 1;
                                    self.sessions.live_at_mut(idx as usize).state =
                                        starved_state(now, &policy, 1);
                                    self.starved_count += 1;
                                    self.metrics.runtime.degraded_entries += 1;
                                }
                            }
                        }
                    }
                }
                2 => {
                    let sess = self.sessions.live_at_mut(idx as usize);
                    let PState::Paused { remaining } = &mut sess.state else {
                        unreachable!("state tag checked above");
                    };
                    *remaining = remaining.saturating_sub(1);
                    if *remaining == 0 {
                        // Reception continued throughout the pause, so the
                        // front moved past the resume position: free hit.
                        let hit = {
                            let sess = self.sessions.live_at(idx as usize);
                            sess.position >= length || sess.rx.received(sess.position)
                        };
                        self.metrics.runtime.record_resume(VcrKind::Pause, hit);
                        if hit {
                            self.sessions.live_at_mut(idx as usize).state = PState::Receiving;
                        } else {
                            match self.try_dedicated_lease() {
                                Some(lease) => {
                                    let sess = self.sessions.live_at_mut(idx as usize);
                                    sess.lease = Some(lease);
                                    sess.state = PState::CatchUp;
                                }
                                None => {
                                    self.metrics.runtime.resume_starved += 1;
                                    self.sessions.live_at_mut(idx as usize).state =
                                        starved_state(now, &policy, 1);
                                    self.starved_count += 1;
                                    self.metrics.runtime.degraded_entries += 1;
                                }
                            }
                        }
                    }
                }
                3 => {
                    if !self.disk_serving() {
                        self.metrics.runtime.stall_minutes += 1.0;
                    } else {
                        let (position, caught_up) = {
                            let sess = self.sessions.live_at(idx as usize);
                            (sess.position, sess.rx.received(sess.position))
                        };
                        if position >= length {
                            self.finish(idx);
                            self.active.swap_remove(i);
                            continue;
                        }
                        if caught_up {
                            // The broadcast front caught up: merge back.
                            let lease = self.sessions.live_at_mut(idx as usize).lease.take();
                            if let Some(lease) = lease {
                                self.release_dedicated_lease(lease);
                            }
                            self.metrics.piggyback_merges += 1;
                            self.sessions.live_at_mut(idx as usize).state = PState::Receiving;
                            self.consume_from_broadcast(idx);
                        } else {
                            let movie = self.movies[movie_idx].movie;
                            let verified = {
                                let sess = self.sessions.live_at(idx as usize);
                                let lease = sess
                                    .lease
                                    .as_ref()
                                    // vod-lint: allow(no-panic) — CatchUp holds
                                    // a lease by construction (faults demote to
                                    // Starved when revoking it).
                                    .expect("catch-up session holds lease");
                                self.disk
                                    .read(lease, movie, position)
                                    .map(|seg| verify_segment(&seg))
                                    .unwrap_or(false)
                            };
                            let sess = self.sessions.live_at_mut(idx as usize);
                            sess.stats.from_disk += 1;
                            if !verified {
                                sess.stats.verify_failures += 1;
                                self.metrics.verify_failures += 1;
                            }
                            sess.position += 1;
                            self.metrics.runtime.disk_minutes += 1.0;
                            if self.sessions.live_at(idx as usize).position >= length {
                                self.finish(idx);
                                self.active.swap_remove(i);
                                continue;
                            }
                        }
                    }
                }
                4 => {
                    // Mirrors `VodServer::degraded_tick`: free rejoin
                    // resolves pending denials permanent; a granted retry
                    // resolves them transient; the timeout resolves them
                    // permanent and stops retrying (the looping broadcast
                    // front still rejoins the session eventually).
                    self.metrics.runtime.rewait_minutes += 1.0;
                    let (free, since, next_retry, backoff, pending, exhausted) = {
                        let sess = self.sessions.live_at(idx as usize);
                        let PState::Starved {
                            since,
                            next_retry,
                            backoff,
                            pending_denials,
                            retries_exhausted,
                        } = sess.state
                        else {
                            unreachable!("state tag checked above");
                        };
                        let free = sess.position >= length || sess.rx.received(sess.position);
                        (
                            free,
                            since,
                            next_retry,
                            backoff,
                            pending_denials,
                            retries_exhausted,
                        )
                    };
                    if free {
                        // The front swept past the starved position.
                        self.reserve.record_denials(pending, false);
                        self.sessions.live_at_mut(idx as usize).state = PState::Receiving;
                        debug_assert!(self.starved_count > 0, "starved session outside census");
                        self.starved_count -= 1;
                        self.metrics.runtime.degraded_rejoined += 1;
                    } else if !exhausted && now >= next_retry {
                        let timed_out = now.saturating_sub(since) >= self.policy.retry_timeout;
                        // Recovery landing on the timeout tick wins the
                        // race: one last lease attempt before the ledger
                        // resolves permanent.
                        let last_chance = timed_out
                            && self.policy.recovery_wins
                            && self.recovered_at == Some(now);
                        if timed_out && !last_chance {
                            self.reserve.record_denials(pending, false);
                            let sess = self.sessions.live_at_mut(idx as usize);
                            if let PState::Starved {
                                pending_denials,
                                retries_exhausted,
                                ..
                            } = &mut sess.state
                            {
                                *pending_denials = 0;
                                *retries_exhausted = true;
                            }
                        } else {
                            match self.try_dedicated_lease() {
                                None if timed_out => {
                                    // Recovery was not enough: the refused
                                    // attempt joins the ledger and the
                                    // timeout proceeds.
                                    self.reserve.record_denials(pending + 1, false);
                                    let sess = self.sessions.live_at_mut(idx as usize);
                                    if let PState::Starved {
                                        pending_denials,
                                        retries_exhausted,
                                        ..
                                    } = &mut sess.state
                                    {
                                        *pending_denials = 0;
                                        *retries_exhausted = true;
                                    }
                                }
                                Some(lease) => {
                                    self.reserve.record_denials(pending, true);
                                    let sess = self.sessions.live_at_mut(idx as usize);
                                    sess.lease = Some(lease);
                                    sess.state = PState::CatchUp;
                                    debug_assert!(
                                        self.starved_count > 0,
                                        "starved session outside census"
                                    );
                                    self.starved_count -= 1;
                                    self.metrics.runtime.degraded_dedicated += 1;
                                }
                                None => {
                                    let nb =
                                        (backoff * 2).min(self.policy.retry_backoff_cap.max(1));
                                    let sess = self.sessions.live_at_mut(idx as usize);
                                    if let PState::Starved {
                                        next_retry,
                                        backoff,
                                        pending_denials,
                                        ..
                                    } = &mut sess.state
                                    {
                                        *pending_denials = pending + 1;
                                        *next_retry = now + nb;
                                        *backoff = nb;
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {
                    self.active.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
        self.now += 1;
    }

    fn reset_metrics(&mut self) {
        let now = self.now as f64;
        let playing = self.metrics.playback.current();
        self.metrics = ServerMetrics::new();
        self.metrics.playback = TimeWeighted::new(now, playing);
        self.reserve.rebaseline(now);
        self.startup_waits = Welford::default();
    }

    fn runtime_metrics(&self) -> RuntimeMetrics {
        let mut rt = self.metrics.runtime.clone();
        rt.dedicated_avg = self.reserve.average(self.now as f64);
        rt.dedicated_peak = self.reserve.peak();
        rt.denied_transient = self.reserve.denied_transient();
        rt.denied_permanent = self.reserve.denied_permanent();
        rt
    }

    fn startup_waits(&self) -> &Welford {
        &self.startup_waits
    }

    fn inject_faults(&mut self, plan: FaultPlan, policy: DegradePolicy) {
        self.fault_mode = !plan.is_empty();
        self.plan = plan;
        self.policy = policy;
    }

    fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        let disk = &self.disk;
        if disk.in_use() + disk.available() + disk.failed() != disk.capacity() {
            v.push(format!(
                "disk conservation broken: in_use {} + free {} + failed {} != provisioned {}",
                disk.in_use(),
                disk.available(),
                disk.failed(),
                disk.capacity()
            ));
        }
        let channel_live: u32 = self
            .movies
            .iter()
            .map(|m| m.leases.iter().filter(|l| l.is_some()).count() as u32)
            .sum();
        // Channel-wheel phase consistency: a staged slot always holds the
        // minute its channel's schedule called at the tick just played
        // (tick() advances `now` after staging).
        if self.now > 0 {
            for (mi, m) in self.movies.iter().enumerate() {
                for (ci, slot) in m.slots.iter().enumerate() {
                    if let Some(seg) = slot.current() {
                        let scheduled = m.geometry.broadcast_minute(ci as u32, self.now - 1);
                        if scheduled != Some(seg.index) {
                            v.push(format!(
                                "movie {mi} channel {ci} staged minute {} off the wheel phase \
                                 (scheduled {scheduled:?})",
                                seg.index
                            ));
                        }
                    }
                }
            }
        }
        if self.reserve.failed() > disk.failed() {
            v.push(format!(
                "reserve failure accounting leads the disk: reserve {} > disk {}",
                self.reserve.failed(),
                disk.failed()
            ));
        }
        let mut held = 0u32;
        let mut starved = 0u32;
        for idx in 0..self.sessions.slot_count() {
            let Some(sess) = self.sessions.at(idx) else {
                continue;
            };
            if sess.lease.is_some() {
                held += 1;
                if !matches!(sess.state, PState::Vcr { .. } | PState::CatchUp) {
                    v.push(format!(
                        "session {idx} holds a dedicated lease in a non-serving state"
                    ));
                }
            } else if matches!(sess.state, PState::CatchUp) {
                v.push(format!("session {idx} is catching up without a lease"));
            }
            if matches!(sess.state, PState::Starved { .. }) {
                starved += 1;
            }
            // Prefix-coverage audit: the incremental front must equal a
            // from-scratch recount of the reception bitmap, and a
            // receiving session can never have consumed past it.
            let front = sess.rx.front();
            if front != sess.rx.audit_front() {
                v.push(format!(
                    "session {idx} reception front {front} drifted from bitmap recount {}",
                    sess.rx.audit_front()
                ));
            }
            if front > sess.rx.length() {
                v.push(format!(
                    "session {idx} reception front {front} beyond movie length {}",
                    sess.rx.length()
                ));
            }
            if matches!(sess.state, PState::Receiving)
                && sess.position < sess.rx.length()
                && sess.position > front
            {
                v.push(format!(
                    "session {idx} consumed to {} past its reception front {front}",
                    sess.position
                ));
            }
        }
        if channel_live + held != disk.in_use() {
            v.push(format!(
                "lease accounting broken: channels {channel_live} + sessions {held} != disk {}",
                disk.in_use()
            ));
        }
        if held != self.reserve.in_use() {
            v.push(format!(
                "reserve accounting broken: sessions hold {held}, reserve says {}",
                self.reserve.in_use()
            ));
        }
        let staging: usize = self.movies.iter().map(|m| m.slots.len()).sum();
        if self.pool.used() != staging {
            v.push(format!(
                "staging accounting broken: pool reserves {}, channels need {staging}",
                self.pool.used()
            ));
        }
        if starved != self.starved_count {
            v.push(format!(
                "starved population drifted: counted {starved}, tracked {}",
                self.starved_count
            ));
        }
        v
    }

    fn degraded_sessions(&self) -> u32 {
        self.starved_count
    }

    fn sessions_finished(&self) -> u64 {
        self.metrics.sessions_done + self.metrics.sessions_closed_early
    }

    fn verify_failures(&self) -> u64 {
        self.metrics.verify_failures
    }

    fn io_streams(&self) -> u32 {
        self.config.disk_streams
    }

    fn buffer_segments(&self) -> u64 {
        self.pool.budget() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::HostedMovie;

    fn config() -> ServerConfig {
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 20, 100.0);
        ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 40)
        }
    }

    #[test]
    fn boundary_join_and_play_through() {
        let mut s = PyramidServer::new(config());
        // Batching max_wait for (120, 20, 100) is T − b = 6 − 5 = 1, so
        // the pyramid provisions d ≤ 1: joins start immediately.
        let id = s.open_session(MovieId(0)).unwrap();
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Shared);
        for _ in 0..121 {
            s.tick();
            assert!(s.check_invariants().is_empty());
        }
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Done);
        assert_eq!(s.sessions_finished(), 1);
        assert_eq!(s.verify_failures(), 0);
        let rt = s.runtime_metrics();
        assert_eq!(rt.buffer_minutes, 120.0, "all service from the broadcast");
        assert_eq!(rt.disk_minutes, 0.0);
    }

    #[test]
    fn startup_wait_bounded_by_segment_one_period() {
        // A looser movie: (120, 2, 20) ⇒ T = 60, b = 10, max_wait = 50;
        // pyramid picks k = 2 (d = 40) — wait, ⌈120/3⌉ = 40 ≤ 50. Joins
        // wait for the next multiple of 40.
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 2, 20.0);
        let cfg = ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 8)
        };
        let mut s = PyramidServer::new(cfg);
        let d = s.movies[0].geometry.unit() as u64;
        assert!(d > 1);
        s.tick(); // now = 1: next boundary is d
        let id = s.open_session(MovieId(0)).unwrap();
        match s.session_status(id).unwrap() {
            SessionStatus::Waiting(at) => assert_eq!(at, d),
            other => panic!("expected Waiting, got {other:?}"),
        }
        assert!(s.startup_waits().mean() < d as f64, "wait < one period");
        for _ in 1..d {
            s.tick();
        }
        // Boundary tick: the session starts receiving.
        s.tick();
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Shared);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn server_resources_are_load_invariant() {
        let mut s = PyramidServer::new(config());
        let channels = s.movies[0].geometry.channels();
        let base_in_use = s.disk.in_use();
        assert_eq!(base_in_use, channels);
        for _ in 0..50 {
            s.open_session(MovieId(0)).unwrap();
        }
        for _ in 0..30 {
            s.tick();
        }
        assert_eq!(
            s.disk.in_use(),
            channels,
            "50 viewers cost zero extra streams"
        );
        assert_eq!(s.buffer_segments(), u64::from(channels));
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn rw_and_pause_resumes_always_hit() {
        let mut s = PyramidServer::new(config());
        let id = s.open_session(MovieId(0)).unwrap();
        for _ in 0..20 {
            s.tick();
        }
        s.request_vcr(id, VcrKind::Rewind, 10).unwrap();
        for _ in 0..10 {
            s.tick();
        }
        s.request_vcr(id, VcrKind::Pause, 5).unwrap();
        for _ in 0..10 {
            s.tick();
        }
        let rt = s.runtime_metrics();
        assert_eq!(rt.resumes.trials(), 2);
        assert_eq!(rt.resumes.hits(), 2, "RW/Pause resume inside the prefix");
        assert_eq!(rt.vcr_denied, 0);
        assert!(s.check_invariants().is_empty());
    }

    #[test]
    fn ff_beyond_front_takes_dedicated_stream_then_merges() {
        let mut s = PyramidServer::new(config());
        let id = s.open_session(MovieId(0)).unwrap();
        for _ in 0..5 {
            s.tick();
        }
        let before = s.reserve.in_use();
        // Jump 60 minutes ahead — far beyond anything received by t=5.
        s.request_vcr(id, VcrKind::FastForward, 60).unwrap();
        assert_eq!(s.reserve.in_use(), before + 1, "sweep holds a lease");
        // Drive until the sweep ends and the catch-up merges back.
        let mut merged = false;
        for _ in 0..120 {
            s.tick();
            assert!(s.check_invariants().is_empty());
            if matches!(s.session_status(id).unwrap(), SessionStatus::Shared) {
                merged = true;
                break;
            }
            if matches!(s.session_status(id).unwrap(), SessionStatus::Done) {
                break;
            }
        }
        assert!(
            merged,
            "catch-up session must merge back into the broadcast"
        );
        assert_eq!(s.reserve.in_use(), before, "lease released at merge");
        assert!(s.metrics.piggyback_merges >= 1);
        let rt = s.runtime_metrics();
        assert!(rt.disk_minutes > 0.0, "the sweep/catch-up was disk-served");
    }

    #[test]
    fn recovered_front_never_leads_schedule() {
        use vod_runtime::FaultEvent;
        // Multi-channel geometry (d = 40, k = 2): PR 7's closed-form
        // bookkeeping could lead the real front by up to d − 1 = 39
        // after an outage recovered. The exact bitmap may not lead the
        // truly-staged schedule by even one minute, on any tick.
        let movie = HostedMovie::from_allocation(MovieId(0), 120, 2, 20.0);
        let cfg = ServerConfig {
            piggyback: None,
            ..ServerConfig::provisioned(vec![movie], 8)
        };
        let mut s = PyramidServer::new(cfg);
        // 2 channel streams + 10 reserve: a count-11 outage exhausts the
        // free reserve, then revokes the newest channel lease (channel 1,
        // the one carrying minutes 40..119).
        assert_eq!(s.disk.available(), 10);
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 30,
            kind: FaultKind::DiskOutage {
                count: 11,
                recover_after: 25,
            },
        }]);
        s.inject_faults(plan, DegradePolicy::default());
        // t = 0 is a segment-1 boundary: the session receives from the
        // first tick, exactly like the truth recorder below.
        let id = s.open_session(MovieId(0)).unwrap();
        let mut truth = ReceptionFront::new(120);
        let mut stalled_ticks = 0u64;
        for _ in 0..400 {
            s.tick();
            if matches!(s.session_status(id).unwrap(), SessionStatus::Done) {
                break;
            }
            for slot in &s.movies[0].slots {
                if let Some(seg) = slot.current() {
                    truth.record(seg.index);
                }
            }
            let sess = s.sessions.get(id.0).unwrap();
            assert!(
                sess.rx.front() <= truth.front(),
                "bookkept front {} leads the truly-staged front {}",
                sess.rx.front(),
                truth.front()
            );
            assert_eq!(
                sess.rx.front(),
                truth.front(),
                "recovery resync must re-anchor the bookkept front exactly"
            );
            if sess.position < sess.rx.front() || sess.position >= 120 {
                // playable or finished
            } else {
                stalled_ticks += 1;
            }
            let violations = s.check_invariants();
            assert!(violations.is_empty(), "{violations:?}");
        }
        assert_eq!(s.session_status(id).unwrap(), SessionStatus::Done);
        assert!(
            stalled_ticks > 0,
            "the outage window must actually stall the playout front"
        );
        let rt = s.runtime_metrics();
        assert!(
            rt.stall_minutes > 0.0,
            "per-channel stall accounting must record the outage"
        );
    }

    #[test]
    fn deterministic_under_replay() {
        let run = || {
            let mut s = PyramidServer::new(config());
            let mut ids = Vec::new();
            for t in 0..80u64 {
                if t % 3 == 0 {
                    ids.push(s.open_session(MovieId(0)).unwrap());
                }
                if t == 30 {
                    let _ = s.request_vcr(ids[0], VcrKind::FastForward, 40);
                }
                if t == 40 {
                    let _ = s.request_vcr(ids[1], VcrKind::Pause, 7);
                }
                s.tick();
            }
            s.runtime_metrics()
        };
        assert_eq!(run(), run());
    }
}
