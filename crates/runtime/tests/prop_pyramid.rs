//! Property tests pinning the pyramid broadcast schedule's
//! channel-transition invariance: for any geometry and any
//! boundary-aligned join, a client recording every channel can play the
//! movie straight through — each minute is broadcast (by exactly one
//! channel) no later than the client needs it, and the startup wait
//! never exceeds one segment-1 period.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;

use vod_runtime::{PyramidGeometry, ReceptionFront};

fn any_geometry() -> impl Strategy<Value = PyramidGeometry> {
    (1u32..400, 1u32..12).prop_map(|(l, k)| PyramidGeometry::new(l, k))
}

/// Brute-force reception front: the set of minutes a client joining at
/// tick `join` has fully received after `elapsed` whole ticks, computed
/// by replaying the broadcast schedule minute by minute.
fn brute_received(g: &PyramidGeometry, join: u64, elapsed: u64) -> Vec<bool> {
    let mut got = vec![false; g.length() as usize];
    for t in join..join + elapsed {
        for c in 0..g.channels() {
            if let Some(m) = g.broadcast_minute(c, t) {
                got[m as usize] = true;
            }
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The channels partition the virtual movie `[0, d(2^k − 1))`
    /// exactly: every real minute belongs to exactly one channel, and
    /// segment boundaries tile with no gap or overlap.
    #[test]
    fn channels_tile_the_movie_exactly_once(g in any_geometry()) {
        let mut cursor = 0u32;
        for c in 0..g.channels() {
            prop_assert_eq!(g.segment_start(c), cursor, "gap/overlap before channel {}", c);
            cursor += g.segment_len(c);
        }
        prop_assert_eq!(cursor, g.virtual_length());
        prop_assert!(cursor >= g.length(), "virtual movie must cover the real one");
        for minute in 0..g.length() {
            let owners = (0..g.channels())
                .filter(|&c| {
                    let s = g.segment_start(c);
                    minute >= s && minute < s + g.segment_len(c)
                })
                .count();
            prop_assert_eq!(owners, 1, "minute {} owned by {} channels", minute, owners);
            prop_assert!(g.channel_of(minute) < g.channels());
        }
    }

    /// Startup wait is < one segment-1 period for every arrival tick,
    /// and the promised start is the next multiple of `d`.
    #[test]
    fn startup_wait_bounded_by_one_unit(g in any_geometry(), t in 0u64..100_000) {
        let wait = g.startup_wait(t);
        prop_assert!(wait < u64::from(g.unit()));
        let start = g.next_boundary(t);
        prop_assert_eq!(start, t + wait);
        prop_assert_eq!(start % u64::from(g.unit()), 0);
    }

    /// Channel-transition invariance (the scheme's correctness theorem):
    /// a client joining at any segment-1 boundary and playing minute `p`
    /// during relative tick `p` has always fully received that minute
    /// first — `received_by(elapsed + 1, position)` holds along the whole
    /// straight-through playback path. Checked against the brute-force
    /// schedule replay, not the closed form.
    #[test]
    fn boundary_join_always_consumable(
        g in any_geometry(),
        boundary_idx in 0u64..64,
    ) {
        let join = boundary_idx * u64::from(g.unit());
        for p in 0..g.length() {
            let got = brute_received(&g, join, u64::from(p) + 1);
            prop_assert!(
                got[p as usize],
                "minute {} not on air by relative tick {} after join {}",
                p, p + 1, join
            );
        }
    }

    /// The closed-form front `received_by` never claims more than the
    /// brute-force schedule delivers (soundness), and both grow to cover
    /// the whole movie exactly once by `virtual_length` ticks.
    #[test]
    fn closed_form_front_is_sound(
        g in any_geometry(),
        boundary_idx in 0u64..32,
        elapsed in 0u64..512,
    ) {
        let join = boundary_idx * u64::from(g.unit());
        let got = brute_received(&g, join, elapsed);
        for p in 0..g.length() {
            if g.received_by(elapsed, p) {
                prop_assert!(
                    got[p as usize],
                    "closed form claims minute {} by elapsed {}, schedule disagrees",
                    p, elapsed
                );
            }
        }
        let full = u64::from(g.virtual_length());
        let all = brute_received(&g, join, full);
        prop_assert!(all.iter().all(|&m| m), "full cycle must deliver every minute");
        prop_assert!(
            (0..g.length()).all(|p| g.received_by(full, p)),
            "closed form must agree the whole movie is in by one full cycle"
        );
    }

    /// Per-channel loss ⇒ prefix-coverage monotonicity and
    /// stall-conservation: under an arbitrary per-tick channel up/down
    /// schedule, a client's [`ReceptionFront`] (fed only from the up
    /// channels) never retreats, always equals the exact contiguous
    /// prefix of the minutes actually delivered, and a greedy player
    /// that consumes one minute per tick inside the front accounts every
    /// active tick as exactly one of {consumed, stalled}.
    #[test]
    fn lossy_channels_keep_front_monotone_and_conserve_stalls(
        g in any_geometry(),
        boundary_idx in 0u64..16,
        // Per-tick channel-down bitmasks, cycled over the run: bit `c`
        // set means channel `c` delivers nothing that tick.
        down_masks in proptest::collection::vec(0u16..(1 << 12), 512),
    ) {
        let join = boundary_idx * u64::from(g.unit());
        // Two full broadcast cycles: long enough for recovery to refill
        // any hole the loss schedule punched.
        let ticks = 2 * u64::from(g.virtual_length().max(2));
        let mut rx = ReceptionFront::new(g.length());
        let mut got = vec![false; g.length() as usize];
        let mut pos = 0u32;
        let mut stalls = 0u64;
        let mut active_ticks = 0u64;
        let mut prev_front = 0u32;
        for rel in 0..ticks {
            let t = join + rel;
            let mask = down_masks[(rel % down_masks.len() as u64) as usize];
            for c in 0..g.channels() {
                if mask & (1 << c) != 0 {
                    continue; // channel down this tick: nothing received
                }
                if let Some(m) = g.broadcast_minute(c, t) {
                    rx.record(m);
                    got[m as usize] = true;
                }
            }
            let front = rx.front();
            prop_assert!(front >= prev_front, "front retreated: {} -> {}", prev_front, front);
            prev_front = front;
            prop_assert_eq!(rx.audit_front(), front, "front out of sync with bitmap");
            let brute_prefix =
                got.iter().position(|&m| !m).unwrap_or(g.length() as usize) as u32;
            prop_assert_eq!(front, brute_prefix, "front != contiguous delivered prefix");
            if pos < g.length() {
                active_ticks += 1;
                if rx.received(pos) {
                    pos += 1;
                } else {
                    stalls += 1;
                }
            }
        }
        prop_assert_eq!(
            u64::from(pos) + stalls, active_ticks,
            "every active tick is exactly one of consumed/stalled"
        );
    }
}
