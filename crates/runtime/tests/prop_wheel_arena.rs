//! Property tests for the million-session engine substrate: the timer
//! wheel's drain order against the `BTreeMap<u64, Vec<T>>` reference
//! model it replaces, and the arena's generational-id liveness (no stale
//! id ever resolves after evict/reuse).

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use std::collections::BTreeMap;

use proptest::prelude::*;
use vod_runtime::{Arena, ArenaId, TimerWheel};

/// One step of a randomized schedule: either file an item some ticks
/// ahead of the cursor, or drain up to some tick ahead of the cursor.
#[derive(Debug, Clone)]
enum WheelOp {
    Schedule { ahead: u64 },
    Drain { ahead: u64 },
}

fn wheel_ops() -> impl Strategy<Value = Vec<WheelOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200_000).prop_map(|ahead| WheelOp::Schedule { ahead }),
            (0u64..64).prop_map(|ahead| WheelOp::Schedule { ahead }),
            // Small hops (tick-by-tick server style) and long jumps
            // across several level boundaries (sim style).
            (0u64..100).prop_map(|ahead| WheelOp::Drain { ahead }),
            (0u64..300_000).prop_map(|ahead| WheelOp::Drain { ahead }),
        ],
        100,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tentpole pin: under arbitrary schedules the wheel drains exactly
    /// what a due-keyed `BTreeMap` with FIFO buckets would — ascending
    /// due tick, schedule order within a tick — including items that
    /// cascade down from every level and the overflow list.
    #[test]
    fn wheel_matches_btreemap_model(ops in wheel_ops()) {
        let mut wheel = TimerWheel::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut next_item = 0u32;
        for op in ops {
            match op {
                WheelOp::Schedule { ahead } => {
                    let due = wheel.now() + ahead;
                    wheel.schedule(due, next_item);
                    model.entry(due).or_default().push(next_item);
                    next_item += 1;
                }
                WheelOp::Drain { ahead } => {
                    let t = wheel.now() + ahead;
                    let got = wheel.drain_tick(t);
                    let mut want = Vec::new();
                    let later = model.split_off(&(t + 1));
                    for (_, mut bucket) in std::mem::replace(&mut model, later) {
                        want.append(&mut bucket);
                    }
                    prop_assert_eq!(&got, &want, "drain to {} diverged", t);
                }
            }
        }
        // Drain everything left; the tails must agree too.
        let t = wheel.next_due().unwrap_or(wheel.now());
        let got = wheel.drain_tick(t.max(wheel.now()));
        let want: Vec<u32> = model
            .range(..=t.max(wheel.now()))
            .flat_map(|(_, b)| b.iter().copied())
            .collect();
        prop_assert_eq!(got, want);
        let remaining: usize = model.range(t.max(wheel.now()) + 1..).map(|(_, b)| b.len()).sum();
        prop_assert_eq!(wheel.len(), remaining, "undrained population diverged");
    }

    /// `next_due` always names the model's first key at or past the
    /// cursor, and draining exactly there yields a non-empty batch.
    #[test]
    fn next_due_is_sharp(ops in wheel_ops()) {
        let mut wheel = TimerWheel::new();
        let mut model: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                WheelOp::Schedule { ahead } => {
                    let due = wheel.now() + ahead;
                    wheel.schedule(due, i as u32);
                    model.entry(due).or_default().push(i as u32);
                }
                WheelOp::Drain { ahead } => {
                    let t = wheel.now() + ahead;
                    wheel.drain_tick(t);
                    model = model.split_off(&(t + 1));
                }
            }
            prop_assert_eq!(wheel.next_due(), model.keys().next().copied());
        }
        if let Some(due) = wheel.next_due() {
            prop_assert!(!wheel.drain_tick(due).is_empty());
        }
    }

    /// Generational liveness: after any interleaving of inserts and
    /// removes, exactly the live ids resolve — a removed id never reads
    /// the slot again (even once reused), double-remove is a no-op, and
    /// reuse is lowest-index-first.
    #[test]
    fn arena_ids_never_dangle(script in proptest::collection::vec(0u16..u16::MAX, 150)) {
        let mut arena: Arena<u64> = Arena::new();
        let mut live: Vec<(ArenaId, u64)> = Vec::new();
        let mut dead: Vec<ArenaId> = Vec::new();
        let mut stamp = 0u64;
        for step in script {
            let remove = !live.is_empty() && step % 3 == 0;
            if remove {
                let (id, val) = live.remove(step as usize % live.len());
                prop_assert_eq!(arena.remove(id), Some(val));
                prop_assert_eq!(arena.remove(id), None, "double remove must miss");
                dead.push(id);
            } else {
                stamp += 1;
                let expected_index = (0..arena.slot_count())
                    .find(|&i| arena.at(i).is_none())
                    .unwrap_or(arena.slot_count());
                let id = arena.insert(stamp);
                prop_assert_eq!(
                    id.index(),
                    expected_index,
                    "reuse must be lowest-index-first"
                );
                live.push((id, stamp));
            }
            prop_assert_eq!(arena.len(), live.len());
            for (id, val) in &live {
                prop_assert_eq!(arena.get(*id), Some(val));
            }
            for id in &dead {
                prop_assert!(arena.get(*id).is_none(), "stale id resolved after evict");
                prop_assert!(!arena.contains(*id));
            }
        }
    }
}
