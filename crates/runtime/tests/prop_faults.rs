//! Property-based tests of the fault-injection semantics: arbitrary
//! fault/op sequences on [`StreamReserve`] never violate stream
//! conservation, and [`PartitionWindows::covers_with_lost`] only ever
//! *removes* coverage relative to the fault-free membership test.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;

use vod_runtime::{FaultPlan, PartitionWindows, StreamReserve};

/// One step of an arbitrary reserve workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Acquire,
    Release,
    Fail(u32),
    Recover(u32),
    RecordDenial(bool),
    Rebaseline,
}

/// Decode one op from two random words (the offline proptest stand-in
/// has no `any::<enum>()`, so ops are mapped from integer draws).
fn any_op() -> impl Strategy<Value = Op> {
    ((0u32..6), (0u32..6)).prop_map(|(tag, n)| match tag {
        0 => Op::Acquire,
        1 => Op::Release,
        2 => Op::Fail(n),
        3 => Op::Recover(n),
        4 => Op::RecordDenial(n % 2 == 0),
        _ => Op::Rebaseline,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Stream conservation `in_use + free + failed == capacity` holds
    /// after every step of an arbitrary acquire/release/fail/recover
    /// interleaving, and failed streams never exceed the capacity.
    #[test]
    fn reserve_conserves_streams(
        cap in 1u32..12,
        len in 1usize..120,
        ops in proptest::collection::vec(any_op(), 120),
    ) {
        let mut r = StreamReserve::with_capacity(cap);
        let mut t = 0.0f64;
        for op in &ops[..len] {
            t += 1.0;
            match *op {
                Op::Acquire => { let _ = r.try_acquire(t); }
                Op::Release => {
                    if r.in_use() > 0 {
                        r.release(t);
                    }
                }
                Op::Fail(n) => { let _ = r.fail_streams(n); }
                Op::Recover(n) => { let _ = r.recover_streams(n); }
                Op::RecordDenial(transient) => r.record_denials(1, transient),
                Op::Rebaseline => r.rebaseline(t),
            }
            prop_assert_eq!(
                r.in_use() + r.free().unwrap() + r.failed(), cap,
                "conservation after {:?}", op
            );
            prop_assert!(r.failed() <= cap);
            prop_assert_eq!(
                r.denied_total(), r.denied_transient() + r.denied_permanent()
            );
        }
    }

    /// An unbounded reserve never fails streams and never runs out.
    #[test]
    fn unbounded_reserve_never_fails(
        fails in proptest::collection::vec(0u32..8, 40),
    ) {
        let mut r = StreamReserve::unbounded();
        for (i, n) in fails.iter().enumerate() {
            prop_assert!(r.try_acquire(i as f64));
            prop_assert_eq!(r.fail_streams(*n), 0);
            prop_assert_eq!(r.failed(), 0);
        }
    }

    /// `covers_with_lost` is a *subset* of `covers`: losing restarts can
    /// only remove coverage, never add it; the empty loss set is exactly
    /// `covers`; and growing the loss set is monotone (coverage only
    /// shrinks).
    #[test]
    fn lost_windows_only_remove_coverage(
        l in 60.0f64..150.0,
        bfrac in 0.0f64..1.0,
        n in 1u32..40,
        t in 0.0f64..600.0,
        p_frac in 0.0f64..1.0,
        lost in proptest::collection::vec(0u64..60, 12),
        lost_len in 0usize..12,
    ) {
        let w = PartitionWindows::new(l, l / n as f64, bfrac * l / n as f64);
        let p = p_frac * l;
        let lost = &lost[..lost_len];
        let plain = w.covers(t, p);
        prop_assert_eq!(w.covers_with_lost(t, p, &[]), plain, "empty set == covers");
        let with_lost = w.covers_with_lost(t, p, lost);
        prop_assert!(!with_lost || plain, "losses cannot create coverage");
        // Monotone: a superset of losses covers at most as much.
        let mut more = lost.to_vec();
        more.extend(0..8u64);
        prop_assert!(
            !w.covers_with_lost(t, p, &more) || with_lost,
            "growing the loss set must not restore coverage"
        );
    }

    /// Generated fault plans are well-formed: time-sorted, sized as
    /// requested, every event inside the horizon, and `events_at`
    /// returns exactly the events scheduled at that tick. Generation is
    /// a pure function of `(seed, horizon, count)`.
    #[test]
    fn generated_plans_are_sorted_and_bounded(
        seed in 0u64..u64::MAX,
        horizon in 16u64..2000,
        count in 0u32..12,
    ) {
        let plan = FaultPlan::generate(seed, horizon, count);
        prop_assert_eq!(plan.len(), count as usize);
        let events = plan.events();
        for pair in events.windows(2) {
            prop_assert!(pair[0].at <= pair[1].at, "events time-sorted");
        }
        for ev in events {
            prop_assert!(ev.at < horizon);
            prop_assert!(plan.events_at(ev.at).iter().any(|e| e == ev));
        }
        // Per-tick slices partition the plan: summing over distinct
        // ticks recovers every event exactly once.
        let mut ticks: Vec<u64> = events.iter().map(|e| e.at).collect();
        ticks.dedup();
        let exact: usize = ticks.iter().map(|&t| plan.events_at(t).len()).sum();
        prop_assert_eq!(exact, count as usize);
        // Determinism: same inputs, same plan.
        prop_assert_eq!(plan.clone(), FaultPlan::generate(seed, horizon, count));
        // Off-plan ticks yield empty slices.
        prop_assert!(plan.events_at(horizon + 1).is_empty());
    }
}
