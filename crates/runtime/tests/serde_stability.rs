//! Serde-stability armor for the chaos-report wire formats: golden
//! strings pin the exact JSON every fault kind and metrics struct emits
//! (so report consumers can diff byte-for-byte across releases), and
//! round-trip properties pin `FaultPlan::from_json` as the exact
//! inverse of `to_json` — including rejection of malformed input.

#![allow(clippy::unwrap_used, clippy::float_cmp)]

use vod_runtime::{FaultEvent, FaultKind, FaultPlan, FederationMetrics, RuntimeMetrics};

/// One event of each of the seven fault kinds, at distinct ticks.
fn one_of_each() -> Vec<FaultEvent> {
    vec![
        FaultEvent {
            at: 5,
            kind: FaultKind::DiskStreamLoss { count: 3 },
        },
        FaultEvent {
            at: 7,
            kind: FaultKind::DiskOutage {
                count: 2,
                recover_after: 30,
            },
        },
        FaultEvent {
            at: 9,
            kind: FaultKind::DiskSlowdown {
                period: 2,
                duration: 40,
            },
        },
        FaultEvent {
            at: 11,
            kind: FaultKind::BufferShrink { segments: 8 },
        },
        FaultEvent {
            at: 13,
            kind: FaultKind::BufferRestore { segments: 8 },
        },
        FaultEvent {
            at: 15,
            kind: FaultKind::ShardOutage { shard: 1 },
        },
        FaultEvent {
            at: 17,
            kind: FaultKind::ShardRecovery { shard: 1 },
        },
    ]
}

#[test]
fn fault_event_json_is_golden_for_every_kind() {
    let golden = [
        r#"{"at":5,"kind":"disk_stream_loss","count":3}"#,
        r#"{"at":7,"kind":"disk_outage","count":2,"recover_after":30}"#,
        r#"{"at":9,"kind":"disk_slowdown","period":2,"duration":40}"#,
        r#"{"at":11,"kind":"buffer_shrink","segments":8}"#,
        r#"{"at":13,"kind":"buffer_restore","segments":8}"#,
        r#"{"at":15,"kind":"shard_outage","shard":1}"#,
        r#"{"at":17,"kind":"shard_recovery","shard":1}"#,
    ];
    for (event, want) in one_of_each().iter().zip(golden) {
        assert_eq!(event.to_json(), want, "frozen shape of {:?}", event.kind);
    }
}

#[test]
fn fault_plan_round_trips_through_json() {
    let plan = FaultPlan::new(one_of_each());
    let json = plan.to_json();
    assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
    // Whitespace tolerance on the way back in.
    let spaced = json.replace(',', " , ").replace('{', " { ");
    assert_eq!(FaultPlan::from_json(&spaced).unwrap(), plan);
    // The empty plan is `[]` both ways.
    assert_eq!(FaultPlan::empty().to_json(), "[]");
    assert_eq!(FaultPlan::from_json("[]").unwrap(), FaultPlan::empty());
}

#[test]
fn generated_plans_round_trip_bitwise() {
    for seed in [0u64, 9, 41, u64::MAX] {
        let single = FaultPlan::generate(seed, 1440, 12);
        assert_eq!(FaultPlan::from_json(&single.to_json()).unwrap(), single);
        for shards in [1, 2, 4] {
            let fed = FaultPlan::generate_federation(seed, 1440, 12, shards);
            assert_eq!(FaultPlan::from_json(&fed.to_json()).unwrap(), fed);
        }
    }
}

#[test]
fn malformed_plans_are_errors_not_silent_drops() {
    for bad in [
        "",                                                  // no array
        "[",                                                 // unterminated
        r#"[{"at":5,"kind":"disk_stream_loss","count":3}"#,  // missing ]
        r#"[{"at":5,"kind":"warp_core_breach","count":3}]"#, // unknown kind
        r#"[{"kind":"disk_stream_loss","count":3}]"#,        // missing at
        r#"[{"at":5,"kind":"disk_stream_loss"}]"#,           // missing params
        r#"[{"at":5,"kind":"shard_outage","shard":1}] []"#,  // trailing input
        r#"[{"at":-5,"kind":"shard_outage","shard":1}]"#,    // negative tick
    ] {
        assert!(FaultPlan::from_json(bad).is_err(), "must reject: {bad:?}");
    }
}

#[test]
fn runtime_metrics_json_schema_and_key_order_are_frozen() {
    assert_eq!(RuntimeMetrics::SCHEMA_VERSION, 2);
    let json = RuntimeMetrics::new().to_json();
    // Keys appear in exactly this order — consumers diff reports by
    // byte, so reordering is a breaking change even when values match.
    let keys = [
        "schema_version",
        "hit_ratio",
        "resume_hits",
        "resume_trials",
        "per_kind",
        "ff_end",
        "rw_truncated",
        "vcr_denied",
        "resume_starved",
        "acquisition_attempts",
        "restart_failures",
        "buffer_minutes",
        "disk_minutes",
        "dedicated_avg",
        "dedicated_peak",
        "denied_transient",
        "denied_permanent",
        "faults_injected",
        "degraded_entries",
        "degraded_rejoined",
        "degraded_dedicated",
        "rewait_minutes",
        "stall_minutes",
    ];
    let mut cursor = 0;
    for key in keys {
        let needle = format!("\"{key}\":");
        let found = json[cursor..]
            .find(&needle)
            .unwrap_or_else(|| panic!("{key} missing or out of order"));
        cursor += found + needle.len();
    }
    assert!(json.starts_with("{\"schema_version\":2,"));
}

#[test]
fn federation_metrics_json_is_golden() {
    assert_eq!(FederationMetrics::SCHEMA_VERSION, 1);
    assert_eq!(
        FederationMetrics::new().to_json(),
        concat!(
            "{\"schema_version\":1,",
            "\"admissions_routed\":0,\"admissions_rerouted\":0,",
            "\"admissions_denied\":0,\"shard_outages\":0,",
            "\"shard_recoveries\":0,\"displaced_total\":0,",
            "\"readmitted_cohort\":0,\"readmitted_dedicated\":0,",
            "\"denied_transient\":0,\"denied_permanent\":0,",
            "\"readmit_refusals\":0,\"rewait_ticks\":0}"
        )
    );
}
