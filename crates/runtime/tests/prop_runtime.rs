//! Property-based tests of the runtime semantics: the O(1) window
//! membership against brute force, quantization invariants, and VCR
//! sweep-plan conservation.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;

use vod_runtime::{plan_vcr, PartitionWindows, QuantizedGeometry};
use vod_workload::VcrKind;

fn any_geometry() -> impl Strategy<Value = PartitionWindows> {
    (
        60.0f64..150.0, // movie length
        0.0f64..1.0,    // buffer fraction
        1u32..60,       // streams
    )
        .prop_map(|(l, bfrac, n)| {
            // (l, B, n) → (l, T = l/n, b = B/n), the paper's geometry.
            PartitionWindows::new(l, l / n as f64, bfrac * l / n as f64)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: the O(1) membership formula agrees with the explicit
    /// k-scan for arbitrary `(l, B, n, t, p)`. Verdicts may differ only
    /// on boundary epsilons, where a nudged position must recover the
    /// brute-force answer.
    #[test]
    fn covers_matches_brute_force(
        w in any_geometry(),
        t in 0.0f64..2000.0,
        p_frac in 0.0f64..1.0,
    ) {
        let p = p_frac * w.movie_len();
        let fast = w.covers(t, p);
        let slow = w.covers_brute_force(t, p);
        if fast != slow {
            let nudged_up = w.covers(t, p + 1e-6);
            let nudged_down = w.covers(t, (p - 1e-6).max(0.0));
            prop_assert!(
                nudged_up == slow || nudged_down == slow,
                "fast {fast} vs slow {slow} at t={t} p={p} (T={}, b={})",
                w.restart_interval(),
                w.window_len()
            );
        }
    }

    /// A hit implies some restart's window spans the position — the
    /// classification never invents coverage out of range.
    #[test]
    fn covered_positions_are_behind_some_stream(
        w in any_geometry(),
        t in 0.0f64..2000.0,
        p_frac in 0.0f64..1.0,
    ) {
        let p = p_frac * w.movie_len();
        if w.covers(t, p) {
            // p ≤ position of the newest stream that is ≥ p, and within
            // window_len of it.
            let mut witnessed = false;
            let mut k = 0.0f64;
            while k * w.restart_interval() <= t + 1e-9 {
                let pos = t - k * w.restart_interval();
                let lo = (pos - w.window_len()).max(0.0);
                if pos <= w.movie_len() + 1e-9 && p >= lo - 1e-6 && p <= pos + 1e-6 {
                    witnessed = true;
                    break;
                }
                k += 1.0;
            }
            prop_assert!(witnessed, "hit at t={t} p={p} with no covering stream");
        }
    }

    /// Quantization invariants for arbitrary `(l, B, n)`: `1 ≤ T ≤ l`,
    /// `1 ≤ b ≤ T`, and the single-rounding promise — the effective wait
    /// `T − b` equals the rounded, clamped model wait.
    #[test]
    fn quantization_invariants(
        l in 1u32..500,
        n in 1u32..200,
        bfrac in 0.0f64..1.2,
    ) {
        let buffer = l as f64 * bfrac;
        let g = QuantizedGeometry::from_allocation(l, n, buffer);
        prop_assert!(g.restart_interval >= 1 && g.restart_interval <= l);
        prop_assert!(g.partition_capacity >= 1 && g.partition_capacity <= g.restart_interval);
        let w_model = ((l as f64 - buffer).max(0.0) / n as f64).round() as u32;
        prop_assert_eq!(g.max_wait(), w_model.min(g.restart_interval - 1));
    }

    /// The quantized join rule agrees with itself across representations:
    /// a position is ideal-joinable iff some live stream's one-advance-
    /// ahead window covers it, and every joinable position is in range.
    #[test]
    fn ideal_join_positions_in_range(
        l in 2u32..300,
        n in 1u32..60,
        bfrac in 0.0f64..1.0,
        t in 0u64..4000,
        p in 0u32..300,
    ) {
        let g = QuantizedGeometry::from_allocation(l, n, l as f64 * bfrac);
        if g.ideal_join_covers(t, p) {
            // Joinable ⇒ within one segment past some live stream front.
            prop_assert!(p <= (t as u32).min(l - 1) + 1, "p={p} t={t} l={l}");
        }
        // Position 0 is joinable while the newest partition is still
        // filling (age + 1 < b): the tail is pinned at 0 so the
        // one-advance-ahead window still reaches the start. At age
        // b − 1 the partition is full and the look-ahead evicts 0.
        let tt = g.restart_interval as u64;
        if (t % tt) + 1 < g.partition_capacity as u64 && l > 1 {
            prop_assert!(g.ideal_join_covers(t, 0), "enrollment window must be open at t={t}");
        }
    }

    /// Sweep plans conserve position: FF lands at `p + swept ≤ l`, RW at
    /// `p − swept ≥ 0`, pause stays put; durations are non-negative and
    /// finite.
    #[test]
    fn sweep_plans_conserve_position(
        kind_sel in 0u8..3,
        magnitude in 0.0f64..500.0,
        p_frac in 0.0f64..1.0,
        l in 30.0f64..200.0,
    ) {
        let kind = [VcrKind::FastForward, VcrKind::Rewind, VcrKind::Pause][kind_sel as usize];
        let position = p_frac * l;
        let rates = vod_model::Rates::paper();
        let plan = plan_vcr(kind, magnitude, position, l, &rates);
        prop_assert!(plan.duration >= 0.0 && plan.duration.is_finite());
        prop_assert!(plan.swept >= 0.0);
        match kind {
            VcrKind::FastForward => {
                prop_assert!((plan.end_pos - (position + plan.swept)).abs() < 1e-9);
                prop_assert!(plan.end_pos <= l + 1e-9);
                prop_assert_eq!(plan.reached_end, magnitude >= l - position);
            }
            VcrKind::Rewind => {
                prop_assert!((plan.end_pos - (position - plan.swept)).abs() < 1e-9);
                prop_assert!(plan.end_pos >= -1e-9);
                prop_assert_eq!(plan.truncated_start, magnitude >= position);
            }
            VcrKind::Pause => {
                prop_assert!((plan.end_pos - position).abs() < 1e-12);
                prop_assert_eq!(plan.swept, 0.0);
            }
        }
    }
}
