//! VCR operation semantics: sweep rates, truncation at the movie
//! boundaries, and the hit/miss resume classification.

use vod_model::Rates;
use vod_workload::VcrKind;

/// Outcome of classifying a resume position against live windows.
///
/// This is the single decision both drivers share: a resume is a
/// [`ResumeClass::Hit`] iff the position is covered by a live partition
/// window (the simulator asks [`crate::PartitionWindows::covers`], the
/// server asks [`crate::QuantizedGeometry::stream_join_covers`] over its
/// actual streams), and a miss sends the viewer to a dedicated stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeClass {
    /// The position lands in a live window: rejoin batched service.
    Hit,
    /// No window covers the position: dedicated (phase-2) service.
    Miss,
}

impl ResumeClass {
    /// Classify from window coverage.
    pub fn classify(covered: bool) -> Self {
        if covered {
            ResumeClass::Hit
        } else {
            ResumeClass::Miss
        }
    }

    /// Is this a hit?
    pub fn is_hit(self) -> bool {
        matches!(self, ResumeClass::Hit)
    }
}

/// A planned VCR sweep in continuous time: how long phase 1 lasts, where
/// the viewer ends up, and whether a movie boundary truncated it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPlan {
    /// Wall-clock minutes the operation takes.
    pub duration: f64,
    /// Resume position in movie-minutes.
    pub end_pos: f64,
    /// Movie-minutes actually swept past the display (0 for a pause).
    pub swept: f64,
    /// FF ran off the end of the movie (the model's `P(end)` release).
    pub reached_end: bool,
    /// RW was truncated at the movie start.
    pub truncated_start: bool,
}

/// Plan a VCR operation issued at position `position` of a movie of
/// length `movie_len` minutes.
///
/// The paper's sweep rules:
/// * **FF** sweeps forward at `R_FF`, truncated at the movie end; a
///   request reaching the end finishes the viewing.
/// * **RW** sweeps backward at `R_RW`, truncated at the movie start (a
///   truncated rewind may still *hit* — the latest stream's enrollment
///   window can cover position 0).
/// * **Pause** holds position; its duration is the pause length itself,
///   converted by the playback rate so duration distributions stay in
///   movie-minute units. A paused viewer consumes no display bandwidth.
pub fn plan_vcr(
    kind: VcrKind,
    magnitude: f64,
    position: f64,
    movie_len: f64,
    rates: &Rates,
) -> SweepPlan {
    match kind {
        VcrKind::FastForward => {
            let sweep = magnitude.min(movie_len - position);
            SweepPlan {
                duration: sweep / rates.fast_forward(),
                end_pos: position + sweep,
                swept: sweep,
                reached_end: magnitude >= movie_len - position,
                truncated_start: false,
            }
        }
        VcrKind::Rewind => {
            let sweep = magnitude.min(position);
            SweepPlan {
                duration: sweep / rates.rewind(),
                end_pos: position - sweep,
                swept: sweep,
                reached_end: false,
                truncated_start: magnitude >= position,
            }
        }
        VcrKind::Pause => SweepPlan {
            duration: magnitude / rates.playback(),
            end_pos: position,
            swept: 0.0,
            reached_end: false,
            truncated_start: false,
        },
    }
}

/// The integer-minute form of the same truncation rules: how many
/// segments a sweep of `magnitude` issued at `position` actually covers
/// before hitting a movie boundary (pauses are not truncated — the
/// magnitude is a duration, not a distance).
pub fn truncate_sweep(kind: VcrKind, magnitude: u32, position: u32, length: u32) -> u32 {
    match kind {
        VcrKind::FastForward => magnitude.min(length.saturating_sub(position)),
        VcrKind::Rewind => magnitude.min(position),
        VcrKind::Pause => magnitude,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ff_truncates_at_end() {
        let r = Rates::paper();
        let p = plan_vcr(VcrKind::FastForward, 50.0, 100.0, 120.0, &r);
        assert_eq!(p.end_pos, 120.0);
        assert_eq!(p.swept, 20.0);
        assert!(p.reached_end);
        assert!(!p.truncated_start);
        assert!((p.duration - 20.0 / r.fast_forward()).abs() < 1e-12);
    }

    #[test]
    fn ff_short_of_end() {
        let r = Rates::paper();
        let p = plan_vcr(VcrKind::FastForward, 10.0, 100.0, 120.0, &r);
        assert_eq!(p.end_pos, 110.0);
        assert!(!p.reached_end);
    }

    #[test]
    fn rw_truncates_at_start() {
        let r = Rates::paper();
        let p = plan_vcr(VcrKind::Rewind, 30.0, 12.0, 120.0, &r);
        assert_eq!(p.end_pos, 0.0);
        assert_eq!(p.swept, 12.0);
        assert!(p.truncated_start);
        assert!(!p.reached_end);
    }

    #[test]
    fn pause_holds_position_and_sweeps_nothing() {
        let r = Rates::paper();
        let p = plan_vcr(VcrKind::Pause, 7.0, 42.0, 120.0, &r);
        assert_eq!(p.end_pos, 42.0);
        assert_eq!(p.swept, 0.0);
        assert_eq!(p.duration, 7.0 / r.playback());
        assert!(!p.reached_end && !p.truncated_start);
    }

    #[test]
    fn quantized_truncation_matches_continuous() {
        assert_eq!(truncate_sweep(VcrKind::FastForward, 50, 100, 120), 20);
        assert_eq!(truncate_sweep(VcrKind::Rewind, 30, 12, 120), 12);
        assert_eq!(truncate_sweep(VcrKind::Pause, 30, 12, 120), 30);
    }

    #[test]
    fn classify() {
        assert!(ResumeClass::classify(true).is_hit());
        assert!(!ResumeClass::classify(false).is_hit());
        assert_eq!(ResumeClass::classify(false), ResumeClass::Miss);
    }
}
