//! Delivery-backend vocabulary shared by the tick server, the event
//! simulator, the sizing layer, and the bench bins.
//!
//! The paper's batching+buffering scheme is one point in the delivery
//! design space; the cost model `C = C_n(φΣB + Σn)` prices any scheme
//! that can state its buffer and stream demand. [`BackendKind`] names the
//! schemes the repo implements, and [`PyramidGeometry`] carries the
//! integer-minute schedule mathematics of the fast-broadcasting backend
//! (geometric segment sizes over a small fixed set of channels), the way
//! [`crate::QuantizedGeometry`] carries the batching schedule.
//!
//! # Fast broadcasting in one paragraph
//!
//! Split an `l`-minute movie into `k` *segments* of geometrically growing
//! nominal lengths `d, 2d, 4d, …, 2^(k−1)·d` with `d = ⌈l / (2^k − 1)⌉`
//! (the trailing virtual minutes beyond `l` are padding). Channel `i`
//! loops its segment forever, one minute per tick, phase-locked to the
//! global clock: at tick `t` it broadcasts minute `start_i + (t mod
//! len_i)`. A client joins at the next multiple of `d` (so startup wait
//! ≤ one segment-1 period), records **all** channels concurrently, and
//! plays from its local buffer. Because every `len_i` divides the global
//! phase grid, each minute is received no later than its playout deadline
//! — the *channel-transition invariance* property pinned by
//! `tests/prop_pyramid.rs`: the schedule works for a join at **any**
//! boundary, with no per-viewer server state at all. Server cost is `k`
//! streams and `k` staging segments per movie, independent of load.

/// The delivery schemes a driver can run a workload against. The trait
/// objects themselves live in `vod-server` (`DeliveryBackend`); this enum
/// is the driver-agnostic name shared with `vod-sim` and the bench grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's scheme: periodic restarts batch viewers onto shared
    /// streams, each dragging a pre-allocated partition window; VCR runs
    /// on a dedicated-stream reserve.
    BatchingBuffering,
    /// Fast (pyramid) broadcasting: every movie occupies a fixed set of
    /// looping segment channels; clients join at segment-1 boundaries and
    /// buffer ahead locally. Server resources are load-independent.
    PyramidBroadcast,
    /// Pure unicast baseline: every viewer holds a dedicated stream for
    /// the whole viewing. No shared windows, so every resume is a miss;
    /// cost grows linearly with concurrency.
    DedicatedStream,
}

impl BackendKind {
    /// All implemented backends, in comparison-table order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::BatchingBuffering,
        BackendKind::PyramidBroadcast,
        BackendKind::DedicatedStream,
    ];

    /// Stable snake_case name (JSON keys, CLI flags, table rows).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::BatchingBuffering => "batching_buffering",
            BackendKind::PyramidBroadcast => "pyramid_broadcast",
            BackendKind::DedicatedStream => "dedicated_stream",
        }
    }

    /// Parse a [`BackendKind::name`] back into the kind.
    pub fn parse(name: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Integer-minute schedule of one movie under fast (pyramid)
/// broadcasting; see the module docs for the scheme. All arithmetic is
/// exact integer arithmetic — the only rounding is `d = ⌈l/(2^k − 1)⌉`,
/// and the continuous constructor routes every float through this type's
/// blessed sites (the `quantize-cast` wall covers this file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PyramidGeometry {
    /// Movie length `l` in minutes (== segments).
    length: u32,
    /// Channel count `k` (also the per-movie stream demand).
    channels: u32,
    /// Segment-1 length `d` in minutes — the startup-wait bound and the
    /// join-boundary grid.
    unit: u32,
}

/// Cap on `k`: beyond `2^k − 1 ≥ l` extra channels cannot shrink `d`
/// below 1 minute, and 31 keeps every `d·2^(k−1)` product in `u32`.
const MAX_CHANNELS: u32 = 31;

impl PyramidGeometry {
    /// Build the schedule for an `l`-minute movie over `channels`
    /// looping channels. `channels` is clamped to `[1, k_max]` where
    /// `k_max` is the smallest `k` with `2^k − 1 ≥ l` (more channels
    /// cannot reduce the unit below one minute). A zero-length movie is
    /// rejected by debug assertion and treated as length 1.
    pub fn new(length: u32, channels: u32) -> Self {
        debug_assert!(length >= 1, "empty movie");
        let length = length.max(1);
        let k_max = (1..=MAX_CHANNELS)
            .find(|k| (1u64 << k) > u64::from(length))
            .unwrap_or(MAX_CHANNELS);
        let k = channels.clamp(1, k_max);
        let unit = u64::from(length).div_ceil((1u64 << k) - 1) as u32;
        Self {
            length,
            channels: k,
            unit,
        }
    }

    /// Smallest channel count whose segment-1 period (the startup-wait
    /// bound) does not exceed `max_wait` minutes: `k = min{k : ⌈l/(2^k −
    /// 1)⌉ ≤ max(w, 1)}`. This is the apples-to-apples constructor the
    /// backend comparison uses — the pyramid backend is provisioned to
    /// promise the same worst-case startup wait as the batching schedule
    /// it is compared against.
    pub fn for_target_wait(length: u32, max_wait: u32) -> Self {
        let target = u64::from(max_wait.max(1));
        let k = (1..=MAX_CHANNELS)
            .find(|&k| u64::from(length.max(1)).div_ceil((1u64 << k) - 1) <= target)
            .unwrap_or(MAX_CHANNELS);
        Self::new(length, k)
    }

    /// Continuous-parameter entry point for `vod-sim` and `vod-sizing`:
    /// quantize a continuous `(l, w)` design point onto the integer
    /// schedule. Rounds length to the nearest whole minute (at least 1)
    /// and floors the wait (a fractional promised wait must not loosen
    /// the integer bound).
    pub fn from_continuous(length_minutes: f64, max_wait_minutes: f64) -> Self {
        // vod-lint: allow(quantize-cast) — this IS the blessed rounding site:
        // every continuous caller funnels through here, like
        // `QuantizedGeometry::from_allocation`.
        let length = (length_minutes.max(1.0).round()) as u32;
        // vod-lint: allow(quantize-cast) — floor keeps the integer wait bound at
        // least as tight as the continuous promise.
        let wait = max_wait_minutes.max(0.0).floor() as u32;
        Self::for_target_wait(length, wait)
    }

    /// Movie length `l` in minutes.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Channel count `k` — also the per-movie I/O stream demand (each
    /// channel loops on its own stream) and the per-movie staging-buffer
    /// demand in segments (the minute each channel is broadcasting).
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Segment-1 length `d`: the join-boundary grid and the worst-case
    /// startup wait.
    pub fn unit(&self) -> u32 {
        self.unit
    }

    /// Padded schedule length `(2^k − 1)·d ≥ l`; minutes in
    /// `[l, virtual_length)` are padding slots on the last channel(s)
    /// during which they broadcast nothing.
    pub fn virtual_length(&self) -> u32 {
        (((1u64 << self.channels) - 1) * u64::from(self.unit)) as u32
    }

    /// Nominal length of 0-based channel `c`'s segment: `d·2^c`.
    pub fn segment_len(&self, channel: u32) -> u32 {
        debug_assert!(channel < self.channels);
        ((1u64 << channel.min(MAX_CHANNELS)) * u64::from(self.unit)) as u32
    }

    /// First minute of 0-based channel `c`'s segment: `d·(2^c − 1)`.
    pub fn segment_start(&self, channel: u32) -> u32 {
        (((1u64 << channel.min(MAX_CHANNELS)) - 1) * u64::from(self.unit)) as u32
    }

    /// The channel whose segment carries `minute` (clamped into the
    /// padded range: padding minutes map to the last channel).
    pub fn channel_of(&self, minute: u32) -> u32 {
        (0..self.channels)
            .rev()
            // vod-lint: allow(time-domain) — segment_start returns the
            // segment's first *minute*; minute-vs-minute despite the name.
            .find(|&c| minute >= self.segment_start(c))
            .unwrap_or(0)
    }

    /// The movie minute channel `c` broadcasts at tick `t`, or `None`
    /// when the slot is padding (beyond the real movie length). The
    /// global phase lock `start_c + (t mod len_c)` is what makes joins
    /// channel-transition invariant: every `len_c` is a multiple of `d`,
    /// so a client aligned to the `d` grid meets every minute by its
    /// playout deadline.
    pub fn broadcast_minute(&self, channel: u32, t: u64) -> Option<u32> {
        let len = u64::from(self.segment_len(channel));
        let minute = self.segment_start(channel) + (t % len) as u32;
        (minute < self.length).then_some(minute)
    }

    /// Ticks from `t` to the next segment-1 boundary (the next multiple
    /// of `d`). Strictly less than `d`, hence at most one segment-1
    /// period — the invariance proptest pins this bound.
    pub fn startup_wait(&self, t: u64) -> u64 {
        let d = u64::from(self.unit);
        (d - t % d) % d
    }

    /// The next segment-1 boundary at or after tick `t`.
    pub fn next_boundary(&self, t: u64) -> u64 {
        t + self.startup_wait(t)
    }

    /// Continuous-time twin of [`PyramidGeometry::next_boundary`] for the
    /// event simulator: the smallest multiple of `d` at or after `t`.
    pub fn next_boundary_continuous(&self, t: f64) -> f64 {
        let d = f64::from(self.unit);
        // vod-lint: allow(quantize-cast) — blessed boundary-grid rounding for
        // the continuous driver; the integer twin is the source of truth.
        (t.max(0.0) / d).ceil() * d
    }

    /// Movie minutes fully buffered client-side as a contiguous prefix
    /// after `elapsed` ticks of reception: segment `c` is complete once
    /// one full cycle (`len_c` ticks) has been recorded, so the prefix is
    /// `Σ len_c` over the maximal prefix of channels with `len_c ≤
    /// elapsed` (clamped to `l`).
    pub fn complete_prefix(&self, elapsed: u64) -> u32 {
        let mut prefix = 0u32;
        for c in 0..self.channels {
            if u64::from(self.segment_len(c)) > elapsed {
                break;
            }
            prefix = prefix.saturating_add(self.segment_len(c));
        }
        prefix.min(self.length)
    }

    /// Has a client that joined `elapsed` ticks ago already received
    /// `minute`? True for the streamed prefix `minute < elapsed` (each
    /// minute arrives no later than its playout deadline — the invariance
    /// property) and for any fully cycled segment
    /// ([`PyramidGeometry::complete_prefix`]).
    pub fn received_by(&self, elapsed: u64, minute: u32) -> bool {
        minute < self.length
            && (u64::from(minute) < elapsed || minute < self.complete_prefix(elapsed))
    }

    /// Continuous-time twin of [`PyramidGeometry::received_by`] for the
    /// event simulator, with positions and elapsed reception time in
    /// fractional minutes.
    pub fn received_by_continuous(&self, elapsed: f64, position: f64) -> bool {
        if !(elapsed.is_finite() && position.is_finite()) || position < 0.0 {
            return false;
        }
        // vod-lint: allow(quantize-cast) — blessed conservative floor: a
        // partially elapsed minute never counts as received.
        let whole = elapsed.max(0.0).floor() as u64;
        position < elapsed.min(f64::from(self.length))
            || position < f64::from(self.complete_prefix(whole))
    }

    /// Worst-case client-side buffer in movie minutes: everything ahead
    /// of the playout point is at most the fully received prefix below
    /// the last segment, `Σ_{c < k−1} len_c = d·(2^(k−1) − 1)` (an upper
    /// bound; the bench reports it alongside the server-side cost, since
    /// fast broadcasting's trade is exactly server buffer → client
    /// buffer).
    pub fn client_buffer_bound(&self) -> u32 {
        self.segment_start(self.channels.saturating_sub(1))
            .min(self.length)
    }
}

/// Exact per-client reception bookkeeping for the broadcast backend: a
/// bitmap of the movie minutes actually received plus the contiguous
/// prefix front derived from it.
///
/// The closed-form [`PyramidGeometry::received_by`] is exact only for a
/// client whose reception ran uninterrupted from a segment-1 boundary.
/// Under per-channel faults (a dead channel, an off-period slowdown
/// tick, an unfunded staging slot) the real reception set develops holes
/// that no elapsed-time formula can reproduce — modeling an outage as a
/// global pause leaves the bookkept front leading the truly-broadcast
/// front by up to `d − 1` minutes after recovery. This type records
/// reality instead: [`record`](Self::record) marks each minute as the
/// broadcast delivers it, and [`front`](Self::front) is always the exact
/// contiguous prefix — it can never lead the schedule and never
/// regresses (bits are only ever set).
///
/// Playout decisions (consume, resume hit, merge, FF classification)
/// deliberately use the *contiguous* front ([`received`](Self::received)
/// is `minute < front`), not the raw bitmap: minutes received beyond a
/// hole are islands the client cannot play into without starving
/// mid-island, so QoS stays defined by the front alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceptionFront {
    length: u32,
    bits: Vec<u64>,
    front: u32,
}

impl ReceptionFront {
    /// Empty reception state for an `length`-minute movie.
    pub fn new(length: u32) -> Self {
        Self {
            length,
            bits: vec![0; (length as usize).div_ceil(64)],
            front: 0,
        }
    }

    /// Movie length this front tracks.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// Record reception of `minute` (idempotent; out-of-range minutes
    /// are ignored) and advance the contiguous front over any newly
    /// connected run of received minutes. Amortized O(1) per recorded
    /// minute: the front walks each bit at most once.
    pub fn record(&mut self, minute: u32) {
        if minute >= self.length {
            return;
        }
        self.bits[(minute / 64) as usize] |= 1u64 << (minute % 64);
        while self.front < self.length && self.has(self.front) {
            self.front += 1;
        }
    }

    /// Raw bitmap lookup: was `minute` itself ever received (even beyond
    /// a hole)? Playout logic should use [`received`](Self::received);
    /// this exists for invariant audits and front reconstruction.
    pub fn has(&self, minute: u32) -> bool {
        minute < self.length && self.bits[(minute / 64) as usize] & (1u64 << (minute % 64)) != 0
    }

    /// Is `minute` inside the contiguous received prefix? This is the
    /// playout-safe notion of "received": true iff `minute <`
    /// [`front`](Self::front).
    pub fn received(&self, minute: u32) -> bool {
        minute < self.front
    }

    /// The exact contiguous reception front: every minute `< front` is
    /// received, minute `front` (if any) is not. Monotone non-decreasing
    /// over a session's lifetime.
    pub fn front(&self) -> u32 {
        self.front
    }

    /// Recompute the front from the raw bitmap. Audit seam: must always
    /// equal [`front`](Self::front) (the incremental walk is exact).
    pub fn audit_front(&self) -> u32 {
        let mut f = 0u32;
        while f < self.length && self.has(f) {
            f += 1;
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.name()), Some(kind));
            assert_eq!(format!("{kind}"), kind.name());
        }
        assert_eq!(BackendKind::parse("nope"), None);
    }

    #[test]
    fn geometry_pins_textbook_shape() {
        // l = 120, k = 4: d = ceil(120/15) = 8, segments 8/16/32/64,
        // virtual length 120 exactly (no padding).
        let g = PyramidGeometry::new(120, 4);
        assert_eq!((g.unit(), g.channels(), g.virtual_length()), (8, 4, 120));
        assert_eq!(
            (0..4).map(|c| g.segment_len(c)).collect::<Vec<_>>(),
            vec![8, 16, 32, 64]
        );
        assert_eq!(
            (0..4).map(|c| g.segment_start(c)).collect::<Vec<_>>(),
            vec![0, 8, 24, 56]
        );
        assert_eq!(g.channel_of(0), 0);
        assert_eq!(g.channel_of(23), 1);
        assert_eq!(g.channel_of(56), 3);
        assert_eq!(g.client_buffer_bound(), 56);
    }

    #[test]
    fn target_wait_picks_smallest_channel_count() {
        // l = 120: k=4 gives d=8 (too slow for w=1); k=7 gives
        // d=ceil(120/127)=1 ≤ 1.
        let g = PyramidGeometry::for_target_wait(120, 1);
        assert_eq!(g.unit(), 1);
        assert_eq!(g.channels(), 7);
        let loose = PyramidGeometry::for_target_wait(120, 10);
        assert_eq!(loose.channels(), 4);
        assert_eq!(loose.unit(), 8);
        // Wait 0 is clamped to 1 minute (the tick grid's floor).
        assert_eq!(PyramidGeometry::for_target_wait(120, 0).unit(), 1);
    }

    #[test]
    fn continuous_constructor_matches_integer_twin() {
        let a = PyramidGeometry::from_continuous(120.0, 6.0);
        let b = PyramidGeometry::for_target_wait(120, 6);
        assert_eq!(a, b);
        // Fractional wait floors (tighter, never looser).
        let c = PyramidGeometry::from_continuous(120.0, 1.9);
        assert_eq!(c, PyramidGeometry::for_target_wait(120, 1));
    }

    #[test]
    fn broadcast_schedule_loops_each_segment() {
        let g = PyramidGeometry::new(120, 4);
        // Channel 0 loops minutes 0..8 with period 8.
        for t in 0..32u64 {
            assert_eq!(g.broadcast_minute(0, t), Some((t % 8) as u32));
        }
        // Channel 3 starts at 56 with period 64.
        assert_eq!(g.broadcast_minute(3, 0), Some(56));
        assert_eq!(g.broadcast_minute(3, 63), Some(119));
        assert_eq!(g.broadcast_minute(3, 64), Some(56));
    }

    #[test]
    fn padding_slots_broadcast_nothing() {
        // l = 10, k = 3: d = 2, segments 2/4/8, virtual length 14; the
        // last channel's minutes 10..14 are padding.
        let g = PyramidGeometry::new(10, 3);
        assert_eq!(g.virtual_length(), 14);
        let mut real = 0;
        let mut padding = 0;
        for t in 0..8u64 {
            match g.broadcast_minute(2, t) {
                Some(m) => {
                    assert!((6..10).contains(&m));
                    real += 1;
                }
                None => padding += 1,
            }
        }
        assert_eq!((real, padding), (4, 4));
    }

    #[test]
    fn startup_wait_bounded_by_unit() {
        let g = PyramidGeometry::new(120, 4); // d = 8
        assert_eq!(g.startup_wait(0), 0);
        assert_eq!(g.startup_wait(1), 7);
        assert_eq!(g.startup_wait(8), 0);
        for t in 0..200u64 {
            assert!(g.startup_wait(t) < u64::from(g.unit()));
            assert_eq!(g.next_boundary(t) % u64::from(g.unit()), 0);
        }
        assert_eq!(g.next_boundary_continuous(8.5), 16.0);
        assert_eq!(g.next_boundary_continuous(16.0), 16.0);
    }

    #[test]
    fn reception_front_grows_with_elapsed() {
        let g = PyramidGeometry::new(120, 4); // segments 8/16/32/64
        assert_eq!(g.complete_prefix(7), 0);
        assert_eq!(g.complete_prefix(8), 8);
        assert_eq!(g.complete_prefix(16), 24);
        assert_eq!(g.complete_prefix(64), 120);
        // Streamed prefix: minute 30 received once elapsed > 30.
        assert!(!g.received_by(30, 30));
        assert!(g.received_by(31, 30));
        // Complete-segment prefix: after 16 ticks minutes 0..24 are all
        // buffered even though only 16 have played.
        assert!(g.received_by(16, 23));
        assert!(!g.received_by(16, 24));
        assert!(!g.received_by(1000, 120), "past the end is never received");
        assert!(g.received_by_continuous(16.5, 23.9));
        assert!(!g.received_by_continuous(16.5, 24.0));
    }

    #[test]
    fn reception_front_tracks_contiguous_prefix_only() {
        let mut rx = ReceptionFront::new(130);
        assert_eq!(rx.front(), 0);
        rx.record(0);
        rx.record(1);
        assert_eq!(rx.front(), 2);
        // An island beyond a hole is recorded but never "received".
        rx.record(5);
        rx.record(129);
        assert_eq!(rx.front(), 2);
        assert!(rx.has(5) && rx.has(129));
        assert!(!rx.received(5) && !rx.received(129));
        // Filling the hole connects the island through in one step.
        rx.record(3);
        rx.record(4);
        assert_eq!(rx.front(), 2, "minute 2 still missing");
        rx.record(2);
        assert_eq!(rx.front(), 6, "front jumps across the connected run");
        assert!(rx.received(5));
        assert_eq!(rx.audit_front(), rx.front());
        // Idempotent and bounded.
        rx.record(2);
        rx.record(999);
        assert_eq!(rx.front(), 6);
        for m in 0..130 {
            rx.record(m);
        }
        assert_eq!(rx.front(), 130);
        assert!(!rx.received(130), "past the end is never received");
        assert_eq!(rx.audit_front(), 130);
    }

    #[test]
    fn reception_front_never_regresses() {
        let mut rx = ReceptionFront::new(64);
        let mut prev = 0;
        // Adversarial order: record minutes in a scrambled pattern.
        for step in 0..64u32 {
            rx.record((step * 37) % 64);
            assert!(rx.front() >= prev, "front regressed");
            assert_eq!(rx.audit_front(), rx.front());
            prev = rx.front();
        }
        assert_eq!(rx.front(), 64);
    }

    #[test]
    fn channel_count_clamps_to_useful_range() {
        // 2^7 − 1 = 127 ≥ 120: more than 7 channels cannot help.
        assert_eq!(PyramidGeometry::new(120, 31).channels(), 7);
        assert_eq!(PyramidGeometry::new(120, 0).channels(), 1);
        let single = PyramidGeometry::new(120, 1);
        assert_eq!(single.unit(), 120, "one channel loops the whole movie");
        assert_eq!(single.client_buffer_bound(), 0);
    }
}
