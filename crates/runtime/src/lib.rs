//! # vod-runtime — shared mechanism semantics
//!
//! The paper's whole argument rests on one set of rules: streams restart
//! every `T = l/n` minutes, each live stream drags a `b = B/n`-minute
//! partition window behind it, and a VCR viewer's resume is a **hit** iff
//! the resume position lands inside some live window. The repo used to
//! state those rules three times — once in the analytic model, once in
//! the event simulator, and once in the tick server — which let them
//! drift. This crate owns them once, as pure driver-agnostic types:
//!
//! * [`PartitionWindows`] — continuous-time window geometry with the O(1)
//!   "is position `p` buffered at time `t`" membership test.
//! * [`QuantizedGeometry`] — the integer-minute `(l, B, n) → (T, b)`
//!   derivation the tick server hosts movies under, with a single
//!   rounding step so the effective wait `w = T − b` always equals the
//!   quantized model wait.
//! * [`plan_vcr`] / [`ResumeClass`] — the VCR sweep-rate and
//!   truncation-at-boundary rules and the single hit/miss resume
//!   classification both drivers share.
//! * [`StreamReserve`] — the shared dedicated-stream pool accountant with
//!   the paper's denial/starvation semantics.
//! * [`RuntimeMetrics`] — the unified measurement vocabulary
//!   `ServerMetrics` and `SimReport` are built on, with JSON export so
//!   bench bins can diff server-vs-sim-vs-model directly.
//! * [`FaultPlan`] / [`DegradePolicy`] — deterministic, virtual-time
//!   fault schedules and the graceful-degradation knobs (bounded re-wait,
//!   retry backoff, batch-admission fallback) both drivers honor.
//! * [`BackendKind`] / [`PyramidGeometry`] / [`ReceptionFront`] — the
//!   delivery-backend vocabulary: which scheme a driver runs
//!   (batching+buffering, pyramid fast broadcasting, dedicated unicast),
//!   the integer-minute geometric segment schedule of the pyramid
//!   scheme, and the exact per-client reception bitmap whose contiguous
//!   front stays truthful under per-channel faults — so the cost model
//!   can price alternatives to the paper's design on the same axes and
//!   the chaos gate can audit them.
//! * [`TimerWheel`] / [`Arena`] — the million-session engine substrate:
//!   a hierarchical timer wheel over the virtual-time grid with a
//!   `BTreeMap`-equivalent drain order, and a generational slab whose
//!   slot reuse matches a linear free-slot scan, so both drivers'
//!   schedulers are O(1) per wakeup without perturbing a single bit of
//!   the deterministic outputs.
//!
//! The drivers (`vod-server`, `vod-sim`) stay thin: they own event loops
//! and data paths, never semantics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod arena;
mod backend;
mod degrade;
mod metrics;
mod quantize;
mod reserve;
mod vcr;
mod wheel;
mod windows;

pub use arena::{Arena, ArenaId};
pub use backend::{BackendKind, PyramidGeometry, ReceptionFront};
pub use degrade::{DegradePolicy, FaultEvent, FaultKind, FaultPlan};
pub use metrics::{kind_index, FederationMetrics, RuntimeMetrics};
pub use quantize::QuantizedGeometry;
pub use reserve::StreamReserve;
pub use vcr::{plan_vcr, truncate_sweep, ResumeClass, SweepPlan};
pub use wheel::TimerWheel;
pub use windows::PartitionWindows;
