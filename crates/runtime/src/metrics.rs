//! The unified measurement vocabulary shared by the tick server and the
//! event simulator.

use vod_workload::{Ratio, VcrKind};

/// Index of a [`VcrKind`] in per-kind arrays: `[FF, RW, PAU]`.
pub fn kind_index(kind: VcrKind) -> usize {
    match kind {
        VcrKind::FastForward => 0,
        VcrKind::Rewind => 1,
        VcrKind::Pause => 2,
    }
}

/// Mechanism-level counters with **one meaning each**, measured
/// identically by `vod-server` and `vod-sim` so their reports can be
/// diffed field by field (and against the analytic model's `P(hit)`).
///
/// Where the drivers' *recovery policies* legitimately differ, the
/// difference is documented on the field; the event being counted is the
/// same on both sides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeMetrics {
    /// VCR resume classifications across all kinds: a trial per resume,
    /// a hit iff a live window covered the resume position. An FF that
    /// runs off the movie end counts as a hit (the model's `P(end)`
    /// release path; the simulator can opt out for experiments).
    pub resumes: Ratio,
    /// Resume classifications split by operation kind, `[FF, RW, PAU]`.
    pub resumes_by_kind: [Ratio; 3],
    /// Fast-forwards that ran off the end of the movie.
    pub ff_end: u64,
    /// Rewinds truncated at the movie start.
    pub rw_truncated: u64,
    /// FF/RW requests **denied at issue time** because the dedicated
    /// reserve was exhausted. The viewer stays in their batch (Erlang
    /// loss); nothing is swept and no resume trial is recorded.
    pub vcr_denied: u64,
    /// Missed resumes that found the reserve empty — the viewer needed a
    /// phase-2 stream and none was free. Recovery differs by driver and
    /// is a policy, not a semantic: the simulator clears the viewer
    /// (blocked customers cleared), the server keeps the session paused
    /// and retries next tick.
    pub resume_starved: u64,
    /// Dedicated-stream acquisition attempts (grants + refusals), the
    /// denominator for Erlang-loss comparisons.
    pub acquisition_attempts: u64,
    /// Scheduled restarts that could not acquire a disk stream. Always 0
    /// on a correctly sized server; structurally 0 in the simulator,
    /// whose restart schedule is implicit (it cannot fail).
    pub restart_failures: u64,
    /// Playback minutes served from buffer partitions (batched service).
    /// The server counts delivered segments exactly; the simulator
    /// accumulates playback intervals, so fractional minutes appear.
    pub buffer_minutes: f64,
    /// Playback minutes served through dedicated streams (phase-1 sweeps
    /// plus phase-2 holds).
    pub disk_minutes: f64,
    /// Time-averaged dedicated streams in use over the measured window.
    pub dedicated_avg: f64,
    /// Peak dedicated streams in use over the measured window.
    pub dedicated_peak: f64,
    /// Dedicated-stream denials whose retry later succeeded (classified at
    /// resolution time by [`StreamReserve`](crate::StreamReserve)
    /// accounting). Counted at issue-time denials and at the server's
    /// degraded-session retries; the pre-existing pause-starvation retry
    /// loop keeps its own `resume_starved` counter and is not reclassified.
    pub denied_transient: u64,
    /// Dedicated-stream denials refused for good: issue-time Erlang loss,
    /// or a degraded session whose retry sequence timed out.
    pub denied_permanent: u64,
    /// Fault events actually applied by the driver (a sim run ignores
    /// tick-grid-only kinds such as disk slowdown and does not count them).
    pub faults_injected: u64,
    /// Sessions that entered the degraded re-wait state after losing their
    /// stream or partition (server-only; the sim has no session objects to
    /// degrade — capacity faults surface there as denials/starvation).
    pub degraded_entries: u64,
    /// Degraded sessions recovered by a partition window sweeping back
    /// over their position (batch rejoin — the free path).
    pub degraded_rejoined: u64,
    /// Degraded sessions recovered by a successful dedicated-stream retry.
    pub degraded_dedicated: u64,
    /// Viewer-minutes spent in the degraded re-wait state.
    pub rewait_minutes: f64,
    /// Viewer-minutes in which delivery stalled because the disk was in a
    /// slowdown fault and the session's segment was not yet produced.
    pub stall_minutes: f64,
}

impl RuntimeMetrics {
    /// Version of the JSON shape emitted by [`RuntimeMetrics::to_json`];
    /// bumped whenever fields are added or renamed so `results/*.json`
    /// consumers can detect shape changes. Version 2 added the fault /
    /// degradation fields and this marker itself (version 1 had neither).
    pub const SCHEMA_VERSION: u32 = 2;

    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one resume classification (overall and per-kind).
    pub fn record_resume(&mut self, kind: VcrKind, hit: bool) {
        self.resumes.push(hit);
        self.resumes_by_kind[kind_index(kind)].push(hit);
    }

    /// Resume classifications for one kind.
    pub fn resume_ratio(&self, kind: VcrKind) -> &Ratio {
        &self.resumes_by_kind[kind_index(kind)]
    }

    /// Overall resume hit ratio (0 when no resumes were observed).
    pub fn hit_ratio(&self) -> f64 {
        self.resumes.value()
    }

    /// Fraction of all delivered playback minutes served from memory.
    pub fn buffer_service_fraction(&self) -> f64 {
        let total = self.buffer_minutes + self.disk_minutes;
        if total <= 0.0 {
            0.0
        } else {
            self.buffer_minutes / total
        }
    }

    /// Merge another run's counters into this one (occupancy statistics
    /// are not mergeable without their time bases; the incoming
    /// `dedicated_avg`/`dedicated_peak` are combined as max).
    pub fn merge(&mut self, other: &RuntimeMetrics) {
        self.resumes.merge(&other.resumes);
        for k in 0..3 {
            self.resumes_by_kind[k].merge(&other.resumes_by_kind[k]);
        }
        self.ff_end += other.ff_end;
        self.rw_truncated += other.rw_truncated;
        self.vcr_denied += other.vcr_denied;
        self.resume_starved += other.resume_starved;
        self.acquisition_attempts += other.acquisition_attempts;
        self.restart_failures += other.restart_failures;
        self.buffer_minutes += other.buffer_minutes;
        self.disk_minutes += other.disk_minutes;
        self.dedicated_avg = self.dedicated_avg.max(other.dedicated_avg);
        self.dedicated_peak = self.dedicated_peak.max(other.dedicated_peak);
        self.denied_transient += other.denied_transient;
        self.denied_permanent += other.denied_permanent;
        self.faults_injected += other.faults_injected;
        self.degraded_entries += other.degraded_entries;
        self.degraded_rejoined += other.degraded_rejoined;
        self.degraded_dedicated += other.degraded_dedicated;
        self.rewait_minutes += other.rewait_minutes;
        self.stall_minutes += other.stall_minutes;
    }

    /// Counters in `later` that went *backwards* relative to `self`
    /// (field names). Every cumulative counter must be non-decreasing
    /// tick over tick; the chaos harness checks this each tick.
    /// Occupancy statistics (`dedicated_avg`/`dedicated_peak`) are
    /// time-averaged/windowed, not cumulative, and are excluded.
    pub fn monotone_violations(&self, later: &RuntimeMetrics) -> Vec<&'static str> {
        let mut bad = Vec::new();
        let u64_fields: [(&'static str, u64, u64); 16] = [
            ("resume_hits", self.resumes.hits(), later.resumes.hits()),
            (
                "resume_trials",
                self.resumes.trials(),
                later.resumes.trials(),
            ),
            ("ff_end", self.ff_end, later.ff_end),
            ("rw_truncated", self.rw_truncated, later.rw_truncated),
            ("vcr_denied", self.vcr_denied, later.vcr_denied),
            ("resume_starved", self.resume_starved, later.resume_starved),
            (
                "acquisition_attempts",
                self.acquisition_attempts,
                later.acquisition_attempts,
            ),
            (
                "restart_failures",
                self.restart_failures,
                later.restart_failures,
            ),
            (
                "denied_transient",
                self.denied_transient,
                later.denied_transient,
            ),
            (
                "denied_permanent",
                self.denied_permanent,
                later.denied_permanent,
            ),
            (
                "faults_injected",
                self.faults_injected,
                later.faults_injected,
            ),
            (
                "degraded_entries",
                self.degraded_entries,
                later.degraded_entries,
            ),
            (
                "degraded_rejoined",
                self.degraded_rejoined,
                later.degraded_rejoined,
            ),
            (
                "degraded_dedicated",
                self.degraded_dedicated,
                later.degraded_dedicated,
            ),
            (
                "ff_trials",
                self.resumes_by_kind[0].trials(),
                later.resumes_by_kind[0].trials(),
            ),
            (
                "rw_trials",
                self.resumes_by_kind[1].trials(),
                later.resumes_by_kind[1].trials(),
            ),
        ];
        for (name, before, after) in u64_fields {
            if after < before {
                bad.push(name);
            }
        }
        let f64_fields: [(&'static str, f64, f64); 4] = [
            ("buffer_minutes", self.buffer_minutes, later.buffer_minutes),
            ("disk_minutes", self.disk_minutes, later.disk_minutes),
            ("rewait_minutes", self.rewait_minutes, later.rewait_minutes),
            ("stall_minutes", self.stall_minutes, later.stall_minutes),
        ];
        for (name, before, after) in f64_fields {
            if after < before {
                bad.push(name);
            }
        }
        bad
    }

    /// JSON object (one line, stable key order) for bench bins that diff
    /// server-vs-sim-vs-model runs.
    pub fn to_json(&self) -> String {
        let kinds = ["ff", "rw", "pau"];
        let per_kind = kinds
            .iter()
            .zip(&self.resumes_by_kind)
            .map(|(label, r)| {
                format!(
                    "\"{label}\":{{\"hits\":{},\"trials\":{},\"ratio\":{}}}",
                    r.hits(),
                    r.trials(),
                    r.value()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"hit_ratio\":{},\"resume_hits\":{},\"resume_trials\":{},",
                "\"per_kind\":{{{}}},\"ff_end\":{},\"rw_truncated\":{},",
                "\"vcr_denied\":{},\"resume_starved\":{},",
                "\"acquisition_attempts\":{},\"restart_failures\":{},",
                "\"buffer_minutes\":{},\"disk_minutes\":{},",
                "\"dedicated_avg\":{},\"dedicated_peak\":{},",
                "\"denied_transient\":{},\"denied_permanent\":{},",
                "\"faults_injected\":{},\"degraded_entries\":{},",
                "\"degraded_rejoined\":{},\"degraded_dedicated\":{},",
                "\"rewait_minutes\":{},\"stall_minutes\":{}}}"
            ),
            Self::SCHEMA_VERSION,
            self.hit_ratio(),
            self.resumes.hits(),
            self.resumes.trials(),
            per_kind,
            self.ff_end,
            self.rw_truncated,
            self.vcr_denied,
            self.resume_starved,
            self.acquisition_attempts,
            self.restart_failures,
            self.buffer_minutes,
            self.disk_minutes,
            self.dedicated_avg,
            self.dedicated_peak,
            self.denied_transient,
            self.denied_permanent,
            self.faults_injected,
            self.degraded_entries,
            self.degraded_rejoined,
            self.degraded_dedicated,
            self.rewait_minutes,
            self.stall_minutes,
        )
    }
}

/// Front-tier counters of a shard federation: admission routing and the
/// displaced-session ledger whole-shard outages feed. Kept separate from
/// [`RuntimeMetrics`] (whose JSON shape is frozen at schema 2) — per-shard
/// runtime metrics still use that vocabulary; this struct only measures
/// what the federation layer itself does between the shards.
///
/// The conservation contract: every session displaced by a
/// [`ShardOutage`](crate::FaultKind::ShardOutage) resolves in exactly one
/// of {re-admitted into a batch cohort, re-admitted on a dedicated
/// stream, denied-transient, denied-permanent} or is still in flight, so
///
/// ```text
/// displaced_total == readmitted_cohort + readmitted_dedicated
///                  + denied_transient + denied_permanent + in flight
/// ```
///
/// holds on every tick ([`FederationMetrics::conserved`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FederationMetrics {
    /// Admissions routed to a shard by the placement map's first live
    /// replica.
    pub admissions_routed: u64,
    /// Admissions that skipped one or more dead replicas before landing
    /// (a strict subset of `admissions_routed`).
    pub admissions_rerouted: u64,
    /// Admissions refused because every replica of the movie was dark.
    pub admissions_denied: u64,
    /// Whole-shard outage events applied by the front tier.
    pub shard_outages: u64,
    /// Whole-shard recovery events applied by the front tier.
    pub shard_recoveries: u64,
    /// Live sessions displaced from shards taken down (ledger entries
    /// ever created).
    pub displaced_total: u64,
    /// Displaced sessions re-admitted into an in-window batch cohort on
    /// a surviving replica.
    pub readmitted_cohort: u64,
    /// Displaced sessions re-admitted by borrowing a surviving shard's
    /// dedicated-stream reserve.
    pub readmitted_dedicated: u64,
    /// Displaced sessions that timed out while their movie was still
    /// recoverable (a replica up, or a scheduled shard recovery ahead).
    pub denied_transient: u64,
    /// Displaced sessions denied for good: every hosting replica dark
    /// with no recovery scheduled.
    pub denied_permanent: u64,
    /// Re-admission attempts refused by a surviving shard (backoff
    /// retries keep the session in the ledger).
    pub readmit_refusals: u64,
    /// Ticks displaced sessions spent waiting in the ledger.
    pub rewait_ticks: u64,
}

impl FederationMetrics {
    /// Version of the JSON shape emitted by
    /// [`FederationMetrics::to_json`]; bumped on any field addition or
    /// rename so `results/FEDERATION_REPORT.json` consumers can detect
    /// drift.
    pub const SCHEMA_VERSION: u32 = 1;

    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Does the displaced-session ledger balance, given `in_flight`
    /// entries still unresolved? See the type docs for the identity.
    pub fn conserved(&self, in_flight: u64) -> bool {
        let resolved = self
            .readmitted_cohort
            .checked_add(self.readmitted_dedicated)
            .and_then(|s| s.checked_add(self.denied_transient))
            .and_then(|s| s.checked_add(self.denied_permanent))
            .and_then(|s| s.checked_add(in_flight));
        resolved == Some(self.displaced_total)
    }

    /// Counters in `later` that went backwards relative to `self` (every
    /// federation counter is cumulative; there are no windowed fields).
    pub fn monotone_violations(&self, later: &FederationMetrics) -> Vec<&'static str> {
        let fields: [(&'static str, u64, u64); 12] = [
            (
                "admissions_routed",
                self.admissions_routed,
                later.admissions_routed,
            ),
            (
                "admissions_rerouted",
                self.admissions_rerouted,
                later.admissions_rerouted,
            ),
            (
                "admissions_denied",
                self.admissions_denied,
                later.admissions_denied,
            ),
            ("shard_outages", self.shard_outages, later.shard_outages),
            (
                "shard_recoveries",
                self.shard_recoveries,
                later.shard_recoveries,
            ),
            (
                "displaced_total",
                self.displaced_total,
                later.displaced_total,
            ),
            (
                "readmitted_cohort",
                self.readmitted_cohort,
                later.readmitted_cohort,
            ),
            (
                "readmitted_dedicated",
                self.readmitted_dedicated,
                later.readmitted_dedicated,
            ),
            (
                "denied_transient",
                self.denied_transient,
                later.denied_transient,
            ),
            (
                "denied_permanent",
                self.denied_permanent,
                later.denied_permanent,
            ),
            (
                "readmit_refusals",
                self.readmit_refusals,
                later.readmit_refusals,
            ),
            ("rewait_ticks", self.rewait_ticks, later.rewait_ticks),
        ];
        let mut bad = Vec::new();
        for (name, before, after) in fields {
            if after < before {
                bad.push(name);
            }
        }
        bad
    }

    /// JSON object (one line, stable key order) for the federation bench.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"schema_version\":{},",
                "\"admissions_routed\":{},\"admissions_rerouted\":{},",
                "\"admissions_denied\":{},\"shard_outages\":{},",
                "\"shard_recoveries\":{},\"displaced_total\":{},",
                "\"readmitted_cohort\":{},\"readmitted_dedicated\":{},",
                "\"denied_transient\":{},\"denied_permanent\":{},",
                "\"readmit_refusals\":{},\"rewait_ticks\":{}}}"
            ),
            Self::SCHEMA_VERSION,
            self.admissions_routed,
            self.admissions_rerouted,
            self.admissions_denied,
            self.shard_outages,
            self.shard_recoveries,
            self.displaced_total,
            self.readmitted_cohort,
            self.readmitted_dedicated,
            self.denied_transient,
            self.denied_permanent,
            self.readmit_refusals,
            self.rewait_ticks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn federation_ledger_conservation() {
        let mut m = FederationMetrics::new();
        assert!(m.conserved(0));
        m.displaced_total = 10;
        m.readmitted_cohort = 4;
        m.readmitted_dedicated = 2;
        m.denied_transient = 1;
        m.denied_permanent = 1;
        assert!(m.conserved(2));
        assert!(!m.conserved(3));
        assert!(!m.conserved(0));
    }

    #[test]
    fn federation_monotone_flags_regressions() {
        let mut before = FederationMetrics::new();
        before.displaced_total = 5;
        before.rewait_ticks = 7;
        let mut after = before;
        after.displaced_total = 6;
        assert!(before.monotone_violations(&after).is_empty());
        after.rewait_ticks = 3;
        after.readmit_refusals = 0;
        let bad = before.monotone_violations(&after);
        assert_eq!(bad, vec!["rewait_ticks"]);
    }

    #[test]
    fn federation_json_shape_is_pinned() {
        let mut m = FederationMetrics::new();
        m.displaced_total = 3;
        m.readmitted_cohort = 2;
        m.rewait_ticks = 9;
        let j = m.to_json();
        assert_eq!(
            j,
            "{\"schema_version\":1,\"admissions_routed\":0,\
             \"admissions_rerouted\":0,\"admissions_denied\":0,\
             \"shard_outages\":0,\"shard_recoveries\":0,\
             \"displaced_total\":3,\"readmitted_cohort\":2,\
             \"readmitted_dedicated\":0,\"denied_transient\":0,\
             \"denied_permanent\":0,\"readmit_refusals\":0,\
             \"rewait_ticks\":9}"
        );
    }

    #[test]
    fn record_updates_overall_and_kind() {
        let mut m = RuntimeMetrics::new();
        m.record_resume(VcrKind::FastForward, true);
        m.record_resume(VcrKind::Pause, false);
        assert_eq!(m.resumes.trials(), 2);
        assert_eq!(m.resumes.hits(), 1);
        assert_eq!(m.resume_ratio(VcrKind::FastForward).hits(), 1);
        assert_eq!(m.resume_ratio(VcrKind::Pause).trials(), 1);
        assert_eq!(m.resume_ratio(VcrKind::Rewind).trials(), 0);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn buffer_fraction() {
        let mut m = RuntimeMetrics::new();
        assert_eq!(m.buffer_service_fraction(), 0.0);
        m.buffer_minutes = 30.0;
        m.disk_minutes = 10.0;
        assert!((m.buffer_service_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = RuntimeMetrics::new();
        a.record_resume(VcrKind::Rewind, true);
        a.vcr_denied = 2;
        a.dedicated_avg = 1.5;
        let mut b = RuntimeMetrics::new();
        b.record_resume(VcrKind::Rewind, false);
        b.vcr_denied = 3;
        b.dedicated_avg = 0.5;
        a.merge(&b);
        assert_eq!(a.resumes.trials(), 2);
        assert_eq!(a.vcr_denied, 5);
        assert_eq!(a.dedicated_avg, 1.5);
    }

    #[test]
    fn merge_sums_fault_fields() {
        let mut a = RuntimeMetrics::new();
        a.denied_transient = 1;
        a.faults_injected = 2;
        a.rewait_minutes = 3.0;
        let mut b = RuntimeMetrics::new();
        b.denied_transient = 4;
        b.denied_permanent = 5;
        b.degraded_entries = 6;
        b.rewait_minutes = 1.5;
        a.merge(&b);
        assert_eq!(a.denied_transient, 5);
        assert_eq!(a.denied_permanent, 5);
        assert_eq!(a.faults_injected, 2);
        assert_eq!(a.degraded_entries, 6);
        assert_eq!(a.rewait_minutes, 4.5);
    }

    #[test]
    fn monotone_violations_flags_regressions_only() {
        let mut before = RuntimeMetrics::new();
        before.vcr_denied = 3;
        before.buffer_minutes = 10.0;
        before.dedicated_avg = 2.0;
        let mut after = before.clone();
        after.vcr_denied = 4;
        after.buffer_minutes = 12.0;
        after.dedicated_avg = 1.0; // windowed stat, allowed to fall
        assert!(before.monotone_violations(&after).is_empty());
        after.vcr_denied = 2;
        after.stall_minutes = -1.0;
        let bad = before.monotone_violations(&after);
        assert!(bad.contains(&"vcr_denied"));
        assert!(bad.contains(&"stall_minutes"));
        assert_eq!(bad.len(), 2);
    }

    #[test]
    fn json_is_parseable_shape() {
        let mut m = RuntimeMetrics::new();
        m.record_resume(VcrKind::FastForward, true);
        m.buffer_minutes = 12.5;
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(
            j.starts_with("{\"schema_version\":2,"),
            "schema marker must lead so consumers can sniff the shape: {j}"
        );
        assert!(j.contains("\"denied_transient\":0"));
        assert!(j.contains("\"stall_minutes\":0"));
        assert!(j.contains("\"hit_ratio\":1"));
        assert!(j.contains("\"buffer_minutes\":12.5"));
        assert!(j.contains("\"ff\":{\"hits\":1,\"trials\":1"));
        // Identical metrics serialize identically (the determinism check
        // the cross-validation harness relies on).
        let mut m2 = RuntimeMetrics::new();
        m2.record_resume(VcrKind::FastForward, true);
        m2.buffer_minutes = 12.5;
        assert_eq!(m, m2);
        assert_eq!(j, m2.to_json());
    }
}
