//! Continuous-time partition-window geometry.

use vod_model::SystemParams;

use crate::vcr::ResumeClass;

/// The periodic restart schedule of one movie and the buffer windows it
/// drags along, in continuous movie-minutes.
///
/// Streams restart every `T` minutes forever, so the window pattern never
/// needs explicit stream objects: the stream started at `kT` has age
/// `a = t − kT` at time `t` and buffers positions `[a − b, a]` (clipped
/// to `[0, l]`, and the window freezes once the stream finishes
/// displaying at `a = l`). Position `p` is buffered at time `t` iff some
/// integer `k ≥ 0` satisfies `t − kT ∈ [p, min(p + b, l)]` — an O(1)
/// membership test ([`PartitionWindows::covers`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindows {
    movie_len: f64,
    restart_interval: f64,
    window_len: f64,
}

impl PartitionWindows {
    /// Geometry from explicit `(l, T, b)`. `l` and `T` must be positive,
    /// `b` non-negative (`b = 0` is pure batching: nothing is buffered).
    pub fn new(movie_len: f64, restart_interval: f64, window_len: f64) -> Self {
        assert!(
            movie_len > 0.0 && restart_interval > 0.0 && window_len >= 0.0,
            "invalid window geometry (l {movie_len}, T {restart_interval}, b {window_len})"
        );
        Self {
            movie_len,
            restart_interval,
            window_len,
        }
    }

    /// Geometry from the paper's `(l, B, n)` system parameters:
    /// `T = l/n`, `b = B/n`.
    pub fn from_params(params: &SystemParams) -> Self {
        Self::new(
            params.movie_len(),
            params.restart_interval(),
            params.partition_len(),
        )
    }

    /// Movie length `l` in minutes.
    pub fn movie_len(&self) -> f64 {
        self.movie_len
    }

    /// Restart interval `T = l/n` in minutes.
    pub fn restart_interval(&self) -> f64 {
        self.restart_interval
    }

    /// Window length `b = B/n` in movie-minutes.
    pub fn window_len(&self) -> f64 {
        self.window_len
    }

    /// Is position `p` inside some live partition window at time `t`?
    ///
    /// O(1): a window covers `p` iff an integer `k ≥ 0` has stream age
    /// `a = t − kT` in `[p, min(p + b, l)]`, so the candidate `k` range
    /// is solved directly instead of scanning streams. The `1e-9` nudges
    /// keep positions exactly on a window boundary inside it despite
    /// floating-point division error.
    pub fn covers(&self, t: f64, p: f64) -> bool {
        let b = self.window_len;
        if b <= 0.0 {
            return false;
        }
        let l = self.movie_len;
        let tt = self.restart_interval;
        let hi_a = (p + b).min(l);
        if hi_a < p {
            return false;
        }
        // vod-lint: allow(quantize-cast) — continuous-time candidate-k bound, not
        // (l,B,n) quantization; the epsilon nudge is documented above.
        let k_min = ((t - hi_a) / tt - 1e-9).ceil().max(0.0);
        // vod-lint: allow(quantize-cast) — same closed-form k-range bound as k_min.
        let k_max = ((t - p) / tt + 1e-9).floor();
        k_min <= k_max
    }

    /// Same restart schedule with a different window length `b` (clamped
    /// non-negative): the geometry after a buffer shrink or restore fault
    /// changes the per-partition allocation. Pure-batching `b = 0` is a
    /// legal result — every resume then misses.
    pub fn with_window_len(&self, window_len: f64) -> Self {
        Self::new(self.movie_len, self.restart_interval, window_len.max(0.0))
    }

    /// Like [`PartitionWindows::covers`], but the restarts whose absolute
    /// index appears in `lost_restarts` produced no live partition (their
    /// stream or buffer was lost to a fault), so their windows never
    /// cover. The stream of candidate `k` started at `kT`, making `k` the
    /// absolute restart index — the same `k` the closed-form range in
    /// `covers` solves for. With an empty loss set this is exactly
    /// `covers`, and adding indices to the set can only remove coverage
    /// (the window-membership monotonicity invariant the fault proptests
    /// pin).
    pub fn covers_with_lost(&self, t: f64, p: f64, lost_restarts: &[u64]) -> bool {
        let b = self.window_len;
        if b <= 0.0 {
            return false;
        }
        let l = self.movie_len;
        let tt = self.restart_interval;
        let hi_a = (p + b).min(l);
        if hi_a < p {
            return false;
        }
        // vod-lint: allow(quantize-cast) — same closed-form candidate-k bound as `covers`.
        let k_min = ((t - hi_a) / tt - 1e-9).ceil().max(0.0);
        // vod-lint: allow(quantize-cast) — same closed-form candidate-k bound as `covers`.
        let k_max = ((t - p) / tt + 1e-9).floor();
        if k_min > k_max {
            return false;
        }
        // vod-lint: allow(quantize-cast) — k bounds are exact small non-negative
        // integers by construction of ceil/floor above, not geometry quantization.
        let (lo, hi) = (k_min as u64, k_max as u64);
        (lo..=hi).any(|k| !lost_restarts.contains(&k))
    }

    /// Reference oracle for [`PartitionWindows::covers`]: scan every live
    /// stream window explicitly. O(t/T); exists so property tests can
    /// check the closed-form candidate-`k` range against brute force.
    pub fn covers_brute_force(&self, t: f64, p: f64) -> bool {
        if self.window_len <= 0.0 {
            return false;
        }
        let hi = (p + self.window_len).min(self.movie_len);
        let mut k = 0.0f64;
        loop {
            let age = t - k * self.restart_interval;
            if age < p - 1e-9 {
                return false;
            }
            if age <= hi + 1e-9 {
                return true;
            }
            k += 1.0;
        }
    }

    /// Age of the most recent restart at time `t` (in `[0, T)`).
    pub fn latest_age(&self, t: f64) -> f64 {
        let tt = self.restart_interval;
        // vod-lint: allow(quantize-cast) — continuous-time modulo (latest restart
        // age), not geometry quantization; stays in f64 throughout.
        t - (t / tt).floor() * tt
    }

    /// The next restart instant at or after... strictly after the latest
    /// restart: `t − latest_age(t) + T`.
    pub fn next_restart_at(&self, t: f64) -> f64 {
        t - self.latest_age(t) + self.restart_interval
    }

    /// Is the newest stream's enrollment window still open at `t` — can
    /// an arriving viewer start at position 0 from its buffer? Open while
    /// the stream age is at most `b` (boundary included, with the same
    /// nudge the membership test uses).
    pub fn enrollment_open(&self, t: f64) -> bool {
        self.latest_age(t) <= self.window_len + 1e-12
    }

    /// Classify a resume at position `p`, time `t`: [`ResumeClass::Hit`]
    /// iff some live window covers `p`. This is **the** hit/miss decision
    /// both the simulator and (in its quantized form) the server apply.
    pub fn classify_resume(&self, t: f64, p: f64) -> ResumeClass {
        ResumeClass::classify(self.covers(t, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vod_model::Rates;

    fn windows() -> PartitionWindows {
        // l = 120, n = 10 → T = 12, b = 6 (w = 6).
        let params = SystemParams::new(120.0, 60.0, 10, Rates::paper()).unwrap();
        PartitionWindows::from_params(&params)
    }

    #[test]
    fn from_params_matches_paper_quantities() {
        let w = windows();
        assert_eq!(w.restart_interval(), 12.0);
        assert_eq!(w.window_len(), 6.0);
        assert_eq!(w.movie_len(), 120.0);
    }

    #[test]
    fn covers_tracks_stream_ages() {
        let w = windows();
        // At t = 100 the live streams have ages 100, 88, 76, … 4; each
        // buffers [age − 6, age].
        assert!(w.covers(100.0, 100.0));
        assert!(w.covers(100.0, 95.0));
        assert!(!w.covers(100.0, 93.0)); // gap between ages 88 and 94
        assert!(w.covers(100.0, 88.0));
        assert!(w.covers(100.0, 0.0)); // age-4 stream still enrolling
        assert!(!w.covers(100.0, 119.0)); // no stream that old
    }

    #[test]
    fn boundaries_count_as_covered() {
        let w = windows();
        // Exactly on the leading and trailing window edges.
        assert!(w.covers(100.0, 94.0));
        assert!(w.covers(100.0, 82.0));
    }

    #[test]
    fn pure_batching_never_covers() {
        let w = PartitionWindows::new(120.0, 12.0, 0.0);
        assert!(!w.covers(100.0, 96.0));
        // At the exact restart instant the age-0 stream is momentarily
        // enrollable even with b = 0; any later it is not.
        assert!(w.enrollment_open(24.0));
        assert!(!w.enrollment_open(24.5));
    }

    #[test]
    fn brute_force_agrees_on_a_grid() {
        let w = windows();
        let mut hits = 0;
        for ti in 0..400 {
            let t = ti as f64 * 0.7;
            for pi in 0..120 {
                let p = pi as f64;
                assert_eq!(
                    w.covers(t, p),
                    w.covers_brute_force(t, p),
                    "disagreement at t={t} p={p}"
                );
                hits += w.covers(t, p) as u32;
            }
        }
        assert!(hits > 0);
    }

    #[test]
    fn restart_clock() {
        let w = windows();
        assert_eq!(w.latest_age(25.0), 1.0);
        assert_eq!(w.next_restart_at(25.0), 36.0);
        assert!(w.enrollment_open(25.0));
        assert!(!w.enrollment_open(31.0)); // age 7 > b = 6
    }

    #[test]
    fn classify_matches_covers() {
        let w = windows();
        assert!(w.classify_resume(100.0, 95.0).is_hit());
        assert!(!w.classify_resume(100.0, 93.0).is_hit());
    }

    #[test]
    fn lost_restarts_remove_coverage_only() {
        let w = windows(); // T = 12, b = 6
                           // At t = 100, p = 95 is covered only by the k = 8 stream (started
                           // at 96... no: started at 8·12 = 96 > 100? k·T ≤ t, ages 100 − 12k;
                           // p = 95 needs age ∈ [95, 101∧120] → k = 0 only (age 100).
        assert!(w.covers_with_lost(100.0, 95.0, &[]));
        assert!(!w.covers_with_lost(100.0, 95.0, &[0]), "sole window lost");
        assert!(
            w.covers_with_lost(100.0, 95.0, &[1, 2, 3]),
            "others irrelevant"
        );
        // p = 0 at t = 100 is covered by the newest stream (k = 8, age 4).
        assert!(!w.covers_with_lost(100.0, 0.0, &[8]));
        // Never-covered positions stay uncovered regardless of the set.
        assert!(!w.covers_with_lost(100.0, 93.0, &[]));
        // Empty loss set ⇒ identical to `covers` across a grid.
        for ti in 0..200 {
            let t = ti as f64 * 0.9;
            for pi in 0..120 {
                let p = pi as f64;
                assert_eq!(w.covers(t, p), w.covers_with_lost(t, p, &[]), "t={t} p={p}");
            }
        }
    }

    #[test]
    fn with_window_len_rebuilds_geometry() {
        let w = windows().with_window_len(0.0);
        assert_eq!(w.window_len(), 0.0);
        assert!(!w.covers(100.0, 100.0), "pure batching after full shrink");
        assert_eq!(w.restart_interval(), 12.0, "schedule unchanged");
        let back = w.with_window_len(6.0);
        assert_eq!(back, windows(), "restore round-trips");
        assert_eq!(windows().with_window_len(-3.0).window_len(), 0.0, "clamped");
    }
}
