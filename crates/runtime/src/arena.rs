//! Generational slab arena for session/stream/viewer storage.
//!
//! Both drivers used to keep their populations in `Vec<Option<T>>` with
//! raw `usize` indices. That layout has two scale problems the
//! million-session north star runs into: freed slots are either never
//! reused (unbounded growth) or reused with *dangling* indices — a stale
//! index silently resolves to whatever took the slot. [`Arena`] keeps the
//! dense `Vec` layout and the deterministic slot order but tags every
//! slot with a generation: an [`ArenaId`] captured before a
//! remove/reinsert can never alias the new occupant, it just stops
//! resolving.
//!
//! # Determinism contract
//!
//! [`Arena::insert`] reuses the **lowest-index** vacant slot (found via a
//! free-slot bitmap) and appends only when the arena is full — exactly
//! the order a linear `iter().find(|s| s.is_none())` scan produces. Code
//! that tiebreaks on slot index (the server's partition-eviction victim
//! order, the restart-enrollment scan) therefore behaves bitwise
//! identically on top of the arena.

/// Generational handle into an [`Arena`]: a slot index plus the slot's
/// generation at insert time. Stale handles (the slot was removed, and
/// possibly reused, since) safely resolve to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArenaId {
    index: u32,
    generation: u32,
}

impl ArenaId {
    /// Slot index (stable for the lifetime of the occupant).
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// Generation of the slot when this id was issued.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Assemble an id from raw parts. Intended for tests and diagnostics
    /// (e.g. probing an arena with an id it never issued); a fabricated
    /// id resolves only if a live slot happens to match both fields.
    pub fn from_parts(index: u32, generation: u32) -> Self {
        Self { index, generation }
    }
}

struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// Slab with generational ids, lowest-index-first slot reuse, and
/// index-ordered iteration. See the module docs for the determinism
/// contract.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    /// Free-slot bitmap, one bit per slot, bit set ⇔ vacant. Scanned
    /// lowest-word-first on insert so reuse is lowest-index-first.
    free: Vec<u64>,
    /// Vacant-slot count; zero lets insert append without scanning.
    vacant: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            vacant: 0,
        }
    }

    /// An empty arena with room for `capacity` occupants before
    /// reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity.div_ceil(64)),
            vacant: 0,
        }
    }

    /// Live occupants.
    pub fn len(&self) -> usize {
        debug_assert!(self.vacant <= self.slots.len());
        self.slots.len() - self.vacant
    }

    /// True when no occupant is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots ever allocated (live + vacant). Index-order walks
    /// iterate `0..slot_count()` and skip vacants via [`Arena::at`].
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Insert `value` into the lowest-index vacant slot (appending a new
    /// slot only when none is vacant) and return its generational id.
    pub fn insert(&mut self, value: T) -> ArenaId {
        if self.vacant > 0 {
            for (w, word) in self.free.iter_mut().enumerate() {
                if *word == 0 {
                    continue;
                }
                let bit = word.trailing_zeros();
                *word &= !(1u64 << bit);
                self.vacant -= 1;
                let index = w * 64 + bit as usize;
                let slot = &mut self.slots[index];
                debug_assert!(slot.value.is_none());
                slot.value = Some(value);
                return ArenaId {
                    index: index as u32,
                    generation: slot.generation,
                };
            }
        }
        let index = self.slots.len();
        if index / 64 == self.free.len() {
            self.free.push(0);
        }
        self.slots.push(Slot {
            generation: 0,
            value: Some(value),
        });
        ArenaId {
            index: index as u32,
            generation: 0,
        }
    }

    /// Remove and return the occupant `id` refers to. The slot's
    /// generation advances, so `id` (and any copy of it) stops resolving;
    /// the slot becomes reusable. Stale or unknown ids return `None`.
    pub fn remove(&mut self, id: ArenaId) -> Option<T> {
        let slot = self.slots.get_mut(id.index())?;
        if slot.generation != id.generation {
            return None;
        }
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free[id.index() / 64] |= 1u64 << (id.index() % 64);
        self.vacant += 1;
        Some(value)
    }

    /// Shared access through a generational id; `None` if stale/unknown.
    pub fn get(&self, id: ArenaId) -> Option<&T> {
        self.slots
            .get(id.index())
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.value.as_ref())
    }

    /// Mutable access through a generational id; `None` if stale/unknown.
    pub fn get_mut(&mut self, id: ArenaId) -> Option<&mut T> {
        self.slots
            .get_mut(id.index())
            .filter(|s| s.generation == id.generation)
            .and_then(|s| s.value.as_mut())
    }

    /// Does `id` refer to a live occupant?
    pub fn contains(&self, id: ArenaId) -> bool {
        self.get(id).is_some()
    }

    /// Shared access by raw slot index; `None` for vacant or
    /// out-of-range slots. The deterministic index-order walk primitive.
    pub fn at(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(|s| s.value.as_ref())
    }

    /// Mutable twin of [`Arena::at`].
    pub fn at_mut(&mut self, index: usize) -> Option<&mut T> {
        self.slots.get_mut(index).and_then(|s| s.value.as_mut())
    }

    /// The current generational id of the occupant at `index`, if live.
    pub fn id_at(&self, index: usize) -> Option<ArenaId> {
        self.slots
            .get(index)
            .filter(|s| s.value.is_some())
            .map(|s| ArenaId {
                index: index as u32,
                generation: s.generation,
            })
    }

    /// The seam the drivers' accounting paths go through: shared access
    /// that treats a dead id as a broken invariant.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not resolve — callers assert the id was
    /// observed live earlier in the same call chain, so a miss means the
    /// liveness invariant is broken and continuing would corrupt
    /// accounting.
    pub fn live(&self, id: ArenaId) -> &T {
        // vod-lint: allow(no-panic) — the liveness seam: a dead id here means the
        // caller's slot-liveness invariant is broken; abort loudly rather than
        // corrupt accounting.
        self.get(id).expect("live arena id")
    }

    /// Mutable twin of [`Arena::live`], same invariant.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not resolve; see [`Arena::live`].
    pub fn live_mut(&mut self, id: ArenaId) -> &mut T {
        // vod-lint: allow(no-panic) — same slot-liveness invariant as `live`.
        self.get_mut(id).expect("live arena id")
    }

    /// Raw-index twin of [`Arena::live`] for hot paths that walk slots in
    /// index order and have already established the slot is occupied.
    ///
    /// # Panics
    ///
    /// Panics if slot `index` is vacant or out of range; see
    /// [`Arena::live`] for the invariant.
    pub fn live_at(&self, index: usize) -> &T {
        // vod-lint: allow(no-panic) — same slot-liveness seam as `live`, keyed by
        // raw index for the drivers' index-ordered walks.
        self.at(index).expect("occupied arena slot")
    }

    /// Mutable twin of [`Arena::live_at`], same invariant.
    ///
    /// # Panics
    ///
    /// Panics if slot `index` is vacant or out of range; see
    /// [`Arena::live`].
    pub fn live_at_mut(&mut self, index: usize) -> &mut T {
        // vod-lint: allow(no-panic) — same slot-liveness seam as `live_at`.
        self.at_mut(index).expect("occupied arena slot")
    }

    /// Iterate live occupants in ascending slot order.
    pub fn iter(&self) -> impl Iterator<Item = (ArenaId, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| {
                (
                    ArenaId {
                        index: i as u32,
                        generation: s.generation,
                    },
                    v,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_is_lowest_index_first() {
        let mut a = Arena::new();
        let ids: Vec<ArenaId> = (0..5).map(|v| a.insert(v)).collect();
        assert_eq!(a.remove(ids[3]), Some(3));
        assert_eq!(a.remove(ids[1]), Some(1));
        assert_eq!(a.len(), 3);
        let r1 = a.insert(10);
        let r2 = a.insert(11);
        assert_eq!((r1.index(), r2.index()), (1, 3), "lowest vacant first");
        let r3 = a.insert(12);
        assert_eq!(r3.index(), 5, "append once full");
        assert_eq!(a.slot_count(), 6);
    }

    #[test]
    fn stale_ids_never_resolve() {
        let mut a = Arena::new();
        let id = a.insert("old");
        assert_eq!(a.remove(id), Some("old"));
        assert_eq!(a.get(id), None);
        assert_eq!(a.remove(id), None, "double remove is a no-op");
        let new_id = a.insert("new");
        assert_eq!(new_id.index(), id.index(), "slot reused");
        assert_ne!(new_id, id, "generation advanced");
        assert_eq!(a.get(id), None, "stale id cannot alias the new occupant");
        assert_eq!(a.get(new_id), Some(&"new"));
    }

    #[test]
    fn index_walk_skips_vacants() {
        let mut a = Arena::new();
        let ids: Vec<ArenaId> = (0..4).map(|v| a.insert(v)).collect();
        a.remove(ids[2]);
        let walked: Vec<i32> = (0..a.slot_count())
            .filter_map(|i| a.at(i).copied())
            .collect();
        assert_eq!(walked, vec![0, 1, 3]);
        assert_eq!(a.id_at(2), None);
        assert_eq!(a.id_at(1), Some(ids[1]));
        let all: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(all, vec![0, 1, 3]);
    }
}
