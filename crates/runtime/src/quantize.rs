//! Integer-minute quantization of the paper's `(l, B, n)` geometry.

/// The tick server's integer-minute view of one movie's schedule:
/// restart interval `T`, partition capacity `b` (segments), movie length
/// `l` (segments).
///
/// # Rounding rule
///
/// The continuous design point gives `T = l/n` and a maximum batching
/// wait `w = (l − B)/n` (the paper's Eq. 2), with `b = T − w`. Quantizing
/// `T` and `b` independently (each with its own `.round()`) lets the
/// effective wait `T − b` disagree with the rounded model wait — e.g.
/// `l = 120, n = 50, B = 95` used to yield `T = 2, b = 2`, an effective
/// wait of 0 where the model promises 0.5. This type therefore rounds
/// **once**, on the quantity the paper actually promises the viewer:
///
/// 1. `T = round(l/n)`, clamped to `[1, l]`;
/// 2. `w = round((l − B)/n)`, clamped to `[0, T − 1]`;
/// 3. `b = T − w`.
///
/// `b ≥ 1` always holds (the final segment doubles as the paper's `δ`
/// hand-off reserve for batched viewers), and the effective wait `T − b`
/// equals the quantized model wait by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantizedGeometry {
    /// Movie length in minutes (== segments).
    pub length: u32,
    /// Restart interval `T` in minutes.
    pub restart_interval: u32,
    /// Partition window `b` in segments, at least 1.
    pub partition_capacity: u32,
}

impl QuantizedGeometry {
    /// Quantize the paper's `(l, B, n)` triple per the rounding rule
    /// above. `buffer_minutes` above `l` is treated as `l` (a window can
    /// never buffer more than the whole movie).
    pub fn from_allocation(length: u32, n_streams: u32, buffer_minutes: f64) -> Self {
        assert!(n_streams >= 1, "need at least one stream");
        assert!(length >= 1, "empty movie");
        let n = n_streams as f64;
        // vod-lint: allow(quantize-cast) — this IS the single blessed rounding
        // site the rule exists to protect; see the rounding rule above.
        let t = ((length as f64 / n).round() as u32).clamp(1, length);
        // vod-lint: allow(quantize-cast) — second half of the same single-rounding
        // rule: w is the one other quantity rounded, b = T − w is derived.
        let wait = ((length as f64 - buffer_minutes).max(0.0) / n).round() as u32;
        let wait = wait.min(t - 1);
        Self {
            length,
            restart_interval: t,
            partition_capacity: t - wait,
        }
    }

    /// Maximum batching wait in minutes: `w = T − b`, equal to the
    /// quantized model wait by construction.
    pub fn max_wait(&self) -> u32 {
        debug_assert!(self.partition_capacity <= self.restart_interval);
        self.restart_interval - self.partition_capacity
    }

    /// Upper bound on simultaneously live streams (including partitions
    /// lingering for trailing readers).
    pub fn max_live_streams(&self) -> u32 {
        (self.length + self.partition_capacity) / self.restart_interval + 2
    }

    /// Can a session at `position` join a live stream whose window is
    /// currently `[front + 1 − filled, front]`?
    ///
    /// Joining means the session consumes `position` *after the stream's
    /// next advance*, so membership is checked against the window one
    /// advance ahead: a still-displaying stream's window shifts forward
    /// by one (evicting its tail once the partition is full); a finished
    /// stream's window is frozen. Checking the current window instead
    /// would let a session join exactly at the trailing edge and underrun
    /// one tick later.
    pub fn stream_join_covers(&self, front: u32, filled: u32, position: u32) -> bool {
        if filled == 0 {
            return false;
        }
        let tail = front + 1 - filled;
        let will_advance = front + 1 < self.length;
        if will_advance {
            let next_tail = if filled == self.partition_capacity {
                tail + 1
            } else {
                tail
            };
            (next_tail..=front + 1).contains(&position)
        } else {
            (tail..=front).contains(&position)
        }
    }

    /// Is `position` joinable at tick `t` under the *ideal* schedule
    /// (every restart on time, streams retiring as they finish)? The
    /// integer-minute analogue of [`crate::PartitionWindows::covers`],
    /// applying [`QuantizedGeometry::stream_join_covers`] to each live
    /// stream age `a = t − kT ∈ [0, l)` with `filled = min(a + 1, b)`.
    /// O(number of live streams); a cross-check helper, not a hot path.
    pub fn ideal_join_covers(&self, t: u64, position: u32) -> bool {
        let tt = self.restart_interval as u64;
        let mut start = (t / tt) * tt;
        loop {
            let age = (t - start) as u32;
            if age < self.length {
                let filled = (age + 1).min(self.partition_capacity);
                if self.stream_join_covers(age, filled, position) {
                    return true;
                }
            }
            if start < tt {
                return false;
            }
            start -= tt;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: pin the `(l, B, n) → (T, b, w)` mapping for the
    /// paper-style configurations the repo's examples and tests use.
    #[test]
    fn quantization_pins_paper_configs() {
        // (l, n, B) → (T, b, w)
        let cases = [
            ((120, 10, 60.0), (12, 6, 6)),  // Example 1 shape, w = 6
            ((120, 10, 30.0), (12, 3, 9)),  // admission-plan movie "a"
            ((60, 5, 20.0), (12, 4, 8)),    // admission-plan movie "b"
            ((120, 20, 100.0), (6, 5, 1)),  // w = 1 column of Figure 7
            ((120, 40, 80.0), (3, 2, 1)),   // n = 40, w = 1
            ((120, 60, 60.0), (2, 1, 1)),   // n = 60, w = 1
            ((120, 50, 95.0), (2, 1, 1)),   // w = 0.5 rounds up, not away
            ((120, 1, 0.0), (120, 1, 119)), // single stream, pure batching
            ((90, 7, 45.0), (13, 7, 6)),    // non-dividing n
        ];
        for ((l, n, buf), (t, b, w)) in cases {
            let g = QuantizedGeometry::from_allocation(l, n, buf);
            assert_eq!(
                (g.restart_interval, g.partition_capacity, g.max_wait()),
                (t, b, w),
                "(l={l}, n={n}, B={buf})"
            );
        }
    }

    #[test]
    fn effective_wait_equals_quantized_model_wait() {
        // The property the single-rounding rule exists for: for any
        // config, T − b == clamp(round((l − B)/n)).
        for l in [60u32, 90, 120, 200] {
            for n in [1u32, 3, 10, 17, 50, 100] {
                for frac in [0.0, 0.25, 0.5, 0.79, 1.0] {
                    let buf = l as f64 * frac;
                    let g = QuantizedGeometry::from_allocation(l, n, buf);
                    let w_model = ((l as f64 - buf) / n as f64).round() as u32;
                    let w_model = w_model.min(g.restart_interval - 1);
                    assert_eq!(g.max_wait(), w_model, "l={l} n={n} B={buf}");
                    assert!(g.partition_capacity >= 1);
                    assert!(g.restart_interval >= 1 && g.restart_interval <= l);
                }
            }
        }
    }

    #[test]
    fn oversized_buffer_saturates() {
        let g = QuantizedGeometry::from_allocation(100, 10, 500.0);
        assert_eq!(g.max_wait(), 0);
        assert_eq!(g.partition_capacity, g.restart_interval);
    }

    #[test]
    fn join_rule_one_advance_ahead() {
        let g = QuantizedGeometry::from_allocation(120, 10, 60.0); // T=12, b=6
                                                                   // Mid-movie, full partition [20, 25]: next advance evicts 20.
        assert!(!g.stream_join_covers(25, 6, 20));
        assert!(g.stream_join_covers(25, 6, 21));
        assert!(g.stream_join_covers(25, 6, 26)); // front + 1 arrives next tick
        assert!(!g.stream_join_covers(25, 6, 27));
        // Still-filling partition [0, 3]: tail stays put.
        assert!(g.stream_join_covers(3, 4, 0));
        assert!(g.stream_join_covers(3, 4, 4));
        assert!(!g.stream_join_covers(3, 4, 5));
        // Finished stream: window frozen at [114, 119].
        assert!(g.stream_join_covers(119, 6, 114));
        assert!(g.stream_join_covers(119, 6, 119));
        assert!(!g.stream_join_covers(119, 6, 113));
        // Empty partition joins nothing.
        assert!(!g.stream_join_covers(0, 0, 0));
    }

    #[test]
    fn ideal_schedule_membership() {
        let g = QuantizedGeometry::from_allocation(120, 10, 60.0); // T=12, b=6
                                                                   // t = 100: stream ages 100, 88, …, 4; full windows one-advance-
                                                                   // ahead are [a − 4, a + 1].
        assert!(g.ideal_join_covers(100, 101));
        assert!(g.ideal_join_covers(100, 96));
        assert!(!g.ideal_join_covers(100, 95));
        assert!(g.ideal_join_covers(100, 0)); // age-4 stream still filling
        assert!(!g.ideal_join_covers(100, 110));
    }
}
