//! Deterministic fault injection and graceful-degradation policy knobs.
//!
//! The paper's sizing model assumes pre-allocated disk streams and buffer
//! partitions always deliver; the only failure it prices is a resume miss
//! costing a dedicated stream. This module supplies the vocabulary for the
//! failures the model omits: a [`FaultPlan`] schedules faults at virtual-time
//! tick boundaries (so every run is reproducible from `(seed, plan)` alone),
//! and a [`DegradePolicy`] parameterizes how a driver responds — bounded
//! re-wait for batch viewers, deterministic retry backoff for dedicated
//! streams, and a timeout that falls back to batch admission. The types are
//! driver-agnostic: `vod-server` applies them on its integer tick grid, and
//! `vod-sim` mirrors the capacity effects in continuous time.

/// One kind of injected fault. All parameters are integers on the virtual
/// tick grid, so a plan has a single meaning on every driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanently remove `count` disk streams from service. Free streams
    /// fail first; if the free pool is short, in-use streams are revoked
    /// (the server picks victims deterministically).
    DiskStreamLoss {
        /// Streams removed.
        count: u32,
    },
    /// Transient outage: remove `count` disk streams now, restore however
    /// many were actually removed `recover_after` ticks later.
    DiskOutage {
        /// Streams removed at the fault instant.
        count: u32,
        /// Ticks until the removed streams return to service.
        recover_after: u64,
    },
    /// Disk slowdown: for `duration` ticks, streams serve a segment only
    /// on ticks divisible by `period` (so `period = 1` is a no-op and
    /// `period = 2` halves throughput).
    DiskSlowdown {
        /// Serve only every `period`-th tick.
        period: u32,
        /// Ticks the slowdown lasts.
        duration: u64,
    },
    /// Shrink the shared buffer budget by `segments` segments. A driver
    /// that is overcommitted afterwards must evict partitions (degrading
    /// their enrolled viewers) until accounting is conserved again.
    BufferShrink {
        /// Segments removed from the budget.
        segments: u32,
    },
    /// Return `segments` segments to the buffer budget (recovery from an
    /// earlier [`FaultKind::BufferShrink`]).
    BufferRestore {
        /// Segments returned to the budget.
        segments: u32,
    },
}

impl FaultKind {
    /// Stable machine-readable tag used in JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::DiskStreamLoss { .. } => "disk_stream_loss",
            FaultKind::DiskOutage { .. } => "disk_outage",
            FaultKind::DiskSlowdown { .. } => "disk_slowdown",
            FaultKind::BufferShrink { .. } => "buffer_shrink",
            FaultKind::BufferRestore { .. } => "buffer_restore",
        }
    }

    fn json_params(&self) -> String {
        match *self {
            FaultKind::DiskStreamLoss { count } => format!("\"count\":{count}"),
            FaultKind::DiskOutage {
                count,
                recover_after,
            } => format!("\"count\":{count},\"recover_after\":{recover_after}"),
            FaultKind::DiskSlowdown { period, duration } => {
                format!("\"period\":{period},\"duration\":{duration}")
            }
            FaultKind::BufferShrink { segments } => format!("\"segments\":{segments}"),
            FaultKind::BufferRestore { segments } => format!("\"segments\":{segments}"),
        }
    }
}

/// A fault scheduled at a virtual-time tick boundary: applied at the top
/// of tick `at`, before any stream advances or session acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick at which the fault is applied.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// JSON object (stable key order) for chaos reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at\":{},\"kind\":\"{}\",{}}}",
            self.at,
            self.kind.tag(),
            self.kind.json_params()
        )
    }
}

/// A deterministic, serializable schedule of faults. Events are kept
/// sorted by tick (stable for equal ticks, preserving push order), so a
/// driver consumes them with a single forward cursor and two runs with the
/// same `(seed, plan)` see bitwise-identical fault sequences.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, leaving driver behavior bitwise
    /// identical to a run without fault injection.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan from explicit events (sorted by tick, stably).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// Add one event, keeping the schedule sorted.
    pub fn push(&mut self, event: FaultEvent) {
        let idx = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(idx, event);
    }

    /// No events scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events scheduled exactly at tick `t`.
    pub fn events_at(&self, t: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < t);
        let hi = self.events.partition_point(|e| e.at <= t);
        &self.events[lo..hi]
    }

    /// Generate a random plan of `events` faults over `[horizon/8, horizon)`
    /// from `seed`, using an inline SplitMix64 generator (integer-only, so
    /// the plan is identical on every platform). The mix cycles through all
    /// five fault kinds with small, recoverable magnitudes; `BufferRestore`
    /// events are paired after shrinks so the budget trends back up.
    pub fn generate(seed: u64, horizon: u64, events: u32) -> Self {
        let mut state = seed ^ 0x5DEECE66D;
        let lo = horizon / 8;
        let span = horizon.saturating_sub(lo).max(1);
        let mut plan = Vec::new();
        let mut shrunk: u32 = 0;
        for i in 0..events {
            let at = lo + splitmix64(&mut state) % span;
            let roll = splitmix64(&mut state);
            let kind = match i % 5 {
                0 => FaultKind::DiskStreamLoss {
                    count: 1 + (roll % 2) as u32,
                },
                1 => FaultKind::DiskOutage {
                    count: 1 + (roll % 2) as u32,
                    recover_after: 5 + roll % 40,
                },
                2 => FaultKind::DiskSlowdown {
                    period: 2 + (roll % 2) as u32,
                    duration: 10 + roll % 50,
                },
                3 => {
                    let segments = 1 + (roll % 8) as u32;
                    shrunk += segments;
                    FaultKind::BufferShrink { segments }
                }
                _ => {
                    let segments = shrunk.max(1);
                    shrunk = 0;
                    FaultKind::BufferRestore { segments }
                }
            };
            plan.push(FaultEvent { at, kind });
        }
        Self::new(plan)
    }

    /// JSON array of events (one line, stable key order) so chaos reports
    /// embed the exact plan they ran.
    pub fn to_json(&self) -> String {
        let body = self
            .events
            .iter()
            .map(FaultEvent::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!("[{body}]")
    }
}

/// SplitMix64 step: the standard finalizer-mix generator, inlined so this
/// crate stays dependency-free while fault-plan generation remains seeded
/// and platform-independent.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for a driver's graceful-degradation state machine. All delays are
/// virtual-time ticks, so the policy is deterministic by construction.
///
/// The server applies it to sessions whose stream or partition was lost:
///
/// 1. For the first [`DegradePolicy::rewait_bound`] ticks the session only
///    waits for a live partition window to sweep back over its position
///    (batch rejoin — free, and structurally bounded by one restart
///    interval `T` when restarts keep succeeding).
/// 2. After the bound, the session additionally retries dedicated-stream
///    acquisition with exponential backoff from
///    [`DegradePolicy::retry_backoff`] up to
///    [`DegradePolicy::retry_backoff_cap`].
/// 3. After [`DegradePolicy::retry_timeout`] ticks degraded, retries stop
///    (their denials resolve as permanent) and the session falls back to
///    pure batch admission: it keeps waiting for a window rejoin and is
///    never dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Ticks a degraded session waits batch-only before dedicated retries.
    pub rewait_bound: u64,
    /// Initial backoff (ticks) between dedicated-stream retries.
    pub retry_backoff: u64,
    /// Backoff cap (ticks); doubling stops here.
    pub retry_backoff_cap: u64,
    /// Ticks after degradation entry when dedicated retries stop for good.
    pub retry_timeout: u64,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            rewait_bound: 2,
            retry_backoff: 1,
            retry_backoff_cap: 8,
            retry_timeout: 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_indexes_by_tick() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                at: 9,
                kind: FaultKind::DiskStreamLoss { count: 1 },
            },
            FaultEvent {
                at: 3,
                kind: FaultKind::BufferShrink { segments: 2 },
            },
        ]);
        plan.push(FaultEvent {
            at: 3,
            kind: FaultKind::DiskSlowdown {
                period: 2,
                duration: 5,
            },
        });
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events()[0].at, 3);
        assert_eq!(plan.events_at(3).len(), 2);
        // Stable for equal ticks: the pushed slowdown lands after the shrink.
        assert_eq!(
            plan.events_at(3)[0].kind,
            FaultKind::BufferShrink { segments: 2 }
        );
        assert_eq!(plan.events_at(9).len(), 1);
        assert!(plan.events_at(4).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(42, 1000, 10);
        let b = FaultPlan::generate(42, 1000, 10);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(a, FaultPlan::generate(43, 1000, 10));
        assert_eq!(a.len(), 10);
        for e in a.events() {
            assert!(e.at >= 125 && e.at < 1000, "event at {} out of range", e.at);
        }
        // All five kinds appear with a 10-event cycle.
        let tags: Vec<_> = a.events().iter().map(|e| e.kind.tag()).collect();
        for tag in [
            "disk_stream_loss",
            "disk_outage",
            "disk_slowdown",
            "buffer_shrink",
            "buffer_restore",
        ] {
            assert!(tags.contains(&tag), "missing kind {tag}");
        }
    }

    #[test]
    fn json_embeds_kind_and_params() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 7,
            kind: FaultKind::DiskOutage {
                count: 2,
                recover_after: 11,
            },
        }]);
        let j = plan.to_json();
        assert_eq!(
            j,
            "[{\"at\":7,\"kind\":\"disk_outage\",\"count\":2,\"recover_after\":11}]"
        );
        assert_eq!(FaultPlan::empty().to_json(), "[]");
    }

    #[test]
    fn default_policy_orders_its_phases() {
        let p = DegradePolicy::default();
        assert!(p.rewait_bound < p.retry_timeout);
        assert!(p.retry_backoff <= p.retry_backoff_cap);
    }
}
