//! Deterministic fault injection and graceful-degradation policy knobs.
//!
//! The paper's sizing model assumes pre-allocated disk streams and buffer
//! partitions always deliver; the only failure it prices is a resume miss
//! costing a dedicated stream. This module supplies the vocabulary for the
//! failures the model omits: a [`FaultPlan`] schedules faults at virtual-time
//! tick boundaries (so every run is reproducible from `(seed, plan)` alone),
//! and a [`DegradePolicy`] parameterizes how a driver responds — bounded
//! re-wait for batch viewers, deterministic retry backoff for dedicated
//! streams, and a timeout that falls back to batch admission. The types are
//! driver-agnostic: `vod-server` applies them on its integer tick grid, and
//! `vod-sim` mirrors the capacity effects in continuous time.

/// One kind of injected fault. All parameters are integers on the virtual
/// tick grid, so a plan has a single meaning on every driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Permanently remove `count` disk streams from service. Free streams
    /// fail first; if the free pool is short, in-use streams are revoked
    /// (the server picks victims deterministically).
    DiskStreamLoss {
        /// Streams removed.
        count: u32,
    },
    /// Transient outage: remove `count` disk streams now, restore however
    /// many were actually removed `recover_after` ticks later.
    DiskOutage {
        /// Streams removed at the fault instant.
        count: u32,
        /// Ticks until the removed streams return to service.
        recover_after: u64,
    },
    /// Disk slowdown: for `duration` ticks, streams serve a segment only
    /// on ticks divisible by `period` (so `period = 1` is a no-op and
    /// `period = 2` halves throughput).
    DiskSlowdown {
        /// Serve only every `period`-th tick.
        period: u32,
        /// Ticks the slowdown lasts.
        duration: u64,
    },
    /// Shrink the shared buffer budget by `segments` segments. A driver
    /// that is overcommitted afterwards must evict partitions (degrading
    /// their enrolled viewers) until accounting is conserved again.
    BufferShrink {
        /// Segments removed from the budget.
        segments: u32,
    },
    /// Return `segments` segments to the buffer budget (recovery from an
    /// earlier [`FaultKind::BufferShrink`]).
    BufferRestore {
        /// Segments returned to the budget.
        segments: u32,
    },
    /// Whole-shard outage: federation shard `shard` goes dark at the
    /// fault instant. The front tier drains its live sessions through
    /// the displaced-session ledger; single-server drivers treat the
    /// event as inert (the front tier, not the shard, interprets it).
    ShardOutage {
        /// Federation shard index taken down.
        shard: u32,
    },
    /// Whole-shard recovery: shard `shard` cold-restarts from its
    /// provisioning config (sessions do not survive — the ledger either
    /// re-admitted them elsewhere or resolves them as denials).
    ShardRecovery {
        /// Federation shard index brought back.
        shard: u32,
    },
}

impl FaultKind {
    /// Stable machine-readable tag used in JSON reports.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultKind::DiskStreamLoss { .. } => "disk_stream_loss",
            FaultKind::DiskOutage { .. } => "disk_outage",
            FaultKind::DiskSlowdown { .. } => "disk_slowdown",
            FaultKind::BufferShrink { .. } => "buffer_shrink",
            FaultKind::BufferRestore { .. } => "buffer_restore",
            FaultKind::ShardOutage { .. } => "shard_outage",
            FaultKind::ShardRecovery { .. } => "shard_recovery",
        }
    }

    fn json_params(&self) -> String {
        match *self {
            FaultKind::DiskStreamLoss { count } => format!("\"count\":{count}"),
            FaultKind::DiskOutage {
                count,
                recover_after,
            } => format!("\"count\":{count},\"recover_after\":{recover_after}"),
            FaultKind::DiskSlowdown { period, duration } => {
                format!("\"period\":{period},\"duration\":{duration}")
            }
            FaultKind::BufferShrink { segments } => format!("\"segments\":{segments}"),
            FaultKind::BufferRestore { segments } => format!("\"segments\":{segments}"),
            FaultKind::ShardOutage { shard } => format!("\"shard\":{shard}"),
            FaultKind::ShardRecovery { shard } => format!("\"shard\":{shard}"),
        }
    }
}

/// A fault scheduled at a virtual-time tick boundary: applied at the top
/// of tick `at`, before any stream advances or session acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Tick at which the fault is applied.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// JSON object (stable key order) for chaos reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"at\":{},\"kind\":\"{}\",{}}}",
            self.at,
            self.kind.tag(),
            self.kind.json_params()
        )
    }
}

/// A deterministic, serializable schedule of faults. Events are kept
/// sorted by tick (stable for equal ticks, preserving push order), so a
/// driver consumes them with a single forward cursor and two runs with the
/// same `(seed, plan)` see bitwise-identical fault sequences.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, leaving driver behavior bitwise
    /// identical to a run without fault injection.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan from explicit events (sorted by tick, stably).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// Add one event, keeping the schedule sorted.
    pub fn push(&mut self, event: FaultEvent) {
        let idx = self.events.partition_point(|e| e.at <= event.at);
        self.events.insert(idx, event);
    }

    /// No events scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// All events in schedule order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The events scheduled exactly at tick `t`.
    pub fn events_at(&self, t: u64) -> &[FaultEvent] {
        let lo = self.events.partition_point(|e| e.at < t);
        let hi = self.events.partition_point(|e| e.at <= t);
        &self.events[lo..hi]
    }

    /// Generate a random plan of `events` faults over `[horizon/8, horizon)`
    /// from `seed`, using an inline SplitMix64 generator (integer-only, so
    /// the plan is identical on every platform). The mix cycles through all
    /// five fault kinds with small, recoverable magnitudes; `BufferRestore`
    /// events are paired after shrinks so the budget trends back up.
    pub fn generate(seed: u64, horizon: u64, events: u32) -> Self {
        let mut state = seed ^ 0x5DEECE66D;
        let lo = horizon / 8;
        let span = horizon.saturating_sub(lo).max(1);
        let mut plan = Vec::new();
        let mut shrunk: u32 = 0;
        for i in 0..events {
            let at = lo + splitmix64(&mut state) % span;
            let roll = splitmix64(&mut state);
            let kind = match i % 5 {
                0 => FaultKind::DiskStreamLoss {
                    count: 1 + (roll % 2) as u32,
                },
                1 => FaultKind::DiskOutage {
                    count: 1 + (roll % 2) as u32,
                    recover_after: 5 + roll % 40,
                },
                2 => FaultKind::DiskSlowdown {
                    period: 2 + (roll % 2) as u32,
                    duration: 10 + roll % 50,
                },
                3 => {
                    let segments = 1 + (roll % 8) as u32;
                    shrunk += segments;
                    FaultKind::BufferShrink { segments }
                }
                _ => {
                    let segments = shrunk.max(1);
                    shrunk = 0;
                    FaultKind::BufferRestore { segments }
                }
            };
            plan.push(FaultEvent { at, kind });
        }
        Self::new(plan)
    }

    /// Generate a federation chaos plan: the single-server mix of
    /// [`FaultPlan::generate`] widened with whole-shard outages over a
    /// front tier of `shards` shards. The generator cycles all seven
    /// fault kinds; every [`FaultKind::ShardOutage`] is paired with a
    /// later [`FaultKind::ShardRecovery`] of the same shard, so the
    /// federation trends back to full strength and displaced sessions
    /// have somewhere to resolve. Seeded with the same integer-only
    /// SplitMix64 stream as `generate` (salted by `shards`), so plans
    /// are identical on every platform.
    pub fn generate_federation(seed: u64, horizon: u64, events: u32, shards: u32) -> Self {
        let shards = shards.max(1);
        let mut state = seed ^ 0x5DEECE66D ^ (u64::from(shards) << 32);
        let lo = horizon / 8;
        let span = horizon.saturating_sub(lo).max(1);
        let mut plan = Vec::new();
        let mut shrunk: u32 = 0;
        let mut last_outage: Option<(u64, u32)> = None;
        for i in 0..events {
            let at = lo + splitmix64(&mut state) % span;
            let roll = splitmix64(&mut state);
            let (at, kind) = match i % 7 {
                0 => (
                    at,
                    FaultKind::DiskStreamLoss {
                        count: 1 + (roll % 2) as u32,
                    },
                ),
                1 => (
                    at,
                    FaultKind::DiskOutage {
                        count: 1 + (roll % 2) as u32,
                        recover_after: 5 + roll % 40,
                    },
                ),
                2 => (
                    at,
                    FaultKind::DiskSlowdown {
                        period: 2 + (roll % 2) as u32,
                        duration: 10 + roll % 50,
                    },
                ),
                3 => {
                    let segments = 1 + (roll % 8) as u32;
                    shrunk += segments;
                    (at, FaultKind::BufferShrink { segments })
                }
                4 => {
                    let segments = shrunk.max(1);
                    shrunk = 0;
                    (at, FaultKind::BufferRestore { segments })
                }
                5 => {
                    let shard = (roll % u64::from(shards)) as u32;
                    last_outage = Some((at, shard));
                    (at, FaultKind::ShardOutage { shard })
                }
                _ => {
                    // Recovery of the most recent outage, strictly after
                    // it; with no outage yet the event is a harmless
                    // recovery of an already-up shard.
                    let (outage_at, shard) = last_outage
                        .take()
                        .unwrap_or((at, (roll % u64::from(shards)) as u32));
                    (
                        outage_at + 1 + roll % 60,
                        FaultKind::ShardRecovery { shard },
                    )
                }
            };
            plan.push(FaultEvent { at, kind });
        }
        Self::new(plan)
    }

    /// JSON array of events (one line, stable key order) so chaos reports
    /// embed the exact plan they ran.
    pub fn to_json(&self) -> String {
        let body = self
            .events
            .iter()
            .map(FaultEvent::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!("[{body}]")
    }

    /// Parse a plan back from the JSON [`FaultPlan::to_json`] emits
    /// (whitespace-tolerant). Round-tripping is the serde-stability
    /// contract of the chaos reports: `from_json(to_json(p)) == p` for
    /// every plan, and unknown kinds or malformed fields are errors
    /// rather than silent drops.
    pub fn from_json(input: &str) -> Result<Self, String> {
        let mut c = Cursor {
            bytes: input.as_bytes(),
            pos: 0,
        };
        c.eat(b'[')?;
        let mut events = Vec::new();
        if !c.peek_is(b']') {
            loop {
                events.push(parse_event(&mut c)?);
                if c.peek_is(b',') {
                    c.eat(b',')?;
                } else {
                    break;
                }
            }
        }
        c.eat(b']')?;
        c.skip_ws();
        if c.pos != c.bytes.len() {
            return Err(format!("trailing input at byte {}", c.pos));
        }
        Ok(Self::new(events))
    }
}

/// Minimal JSON scanner for [`FaultPlan::from_json`]: just enough for the
/// flat integer objects the emitter writes, kept dependency-free.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek_is(&mut self, b: u8) -> bool {
        self.skip_ws();
        self.bytes.get(self.pos) == Some(&b)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&b| b != b'"') {
            self.pos += 1;
        }
        let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.eat(b'"')?;
        Ok(s)
    }

    fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(format!("expected integer at byte {start}"));
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos])
            .parse::<u64>()
            .map_err(|e| format!("integer at byte {start}: {e}"))
    }
}

/// Parse one `{"at":…,"kind":"…",…}` object into a [`FaultEvent`].
fn parse_event(c: &mut Cursor<'_>) -> Result<FaultEvent, String> {
    c.eat(b'{')?;
    let mut at: Option<u64> = None;
    let mut tag: Option<String> = None;
    let mut params: Vec<(String, u64)> = Vec::new();
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "at" => at = Some(c.integer()?),
            "kind" => tag = Some(c.string()?),
            _ => params.push((key, c.integer()?)),
        }
        if c.peek_is(b',') {
            c.eat(b',')?;
        } else {
            break;
        }
    }
    c.eat(b'}')?;
    let at = at.ok_or_else(|| "event missing `at`".to_string())?;
    let tag = tag.ok_or_else(|| "event missing `kind`".to_string())?;
    let get = |name: &str| -> Result<u64, String> {
        params
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("`{tag}` event missing `{name}`"))
    };
    let narrow = |v: u64, name: &str| -> Result<u32, String> {
        u32::try_from(v).map_err(|_| format!("`{name}` out of u32 range: {v}"))
    };
    let kind = match tag.as_str() {
        "disk_stream_loss" => FaultKind::DiskStreamLoss {
            count: narrow(get("count")?, "count")?,
        },
        "disk_outage" => FaultKind::DiskOutage {
            count: narrow(get("count")?, "count")?,
            recover_after: get("recover_after")?,
        },
        "disk_slowdown" => FaultKind::DiskSlowdown {
            period: narrow(get("period")?, "period")?,
            duration: get("duration")?,
        },
        "buffer_shrink" => FaultKind::BufferShrink {
            segments: narrow(get("segments")?, "segments")?,
        },
        "buffer_restore" => FaultKind::BufferRestore {
            segments: narrow(get("segments")?, "segments")?,
        },
        "shard_outage" => FaultKind::ShardOutage {
            shard: narrow(get("shard")?, "shard")?,
        },
        "shard_recovery" => FaultKind::ShardRecovery {
            shard: narrow(get("shard")?, "shard")?,
        },
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    Ok(FaultEvent { at, kind })
}

/// SplitMix64 step: the standard finalizer-mix generator, inlined so this
/// crate stays dependency-free while fault-plan generation remains seeded
/// and platform-independent.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for a driver's graceful-degradation state machine. All delays are
/// virtual-time ticks, so the policy is deterministic by construction.
///
/// The server applies it to sessions whose stream or partition was lost:
///
/// 1. For the first [`DegradePolicy::rewait_bound`] ticks the session only
///    waits for a live partition window to sweep back over its position
///    (batch rejoin — free, and structurally bounded by one restart
///    interval `T` when restarts keep succeeding).
/// 2. After the bound, the session additionally retries dedicated-stream
///    acquisition with exponential backoff from
///    [`DegradePolicy::retry_backoff`] up to
///    [`DegradePolicy::retry_backoff_cap`].
/// 3. After [`DegradePolicy::retry_timeout`] ticks degraded, retries stop
///    (their denials resolve as permanent) and the session falls back to
///    pure batch admission: it keeps waiting for a window rejoin and is
///    never dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradePolicy {
    /// Ticks a degraded session waits batch-only before dedicated retries.
    pub rewait_bound: u64,
    /// Initial backoff (ticks) between dedicated-stream retries.
    pub retry_backoff: u64,
    /// Backoff cap (ticks); doubling stops here.
    pub retry_backoff_cap: u64,
    /// Ticks after degradation entry when dedicated retries stop for good.
    pub retry_timeout: u64,
    /// Resolution order when a capacity recovery lands on the very tick a
    /// session's retry timeout expires: with `recovery_wins` the session
    /// gets one last lease attempt against the just-recovered capacity
    /// before its ledger resolves (recovery wins the race); without it
    /// the timeout resolves first (the historical order, kept as the
    /// default so frozen chaos baselines stay byte-identical). The
    /// federation front tier arms this for the shards it owns — after a
    /// whole-shard recovery the race is the norm, not the edge.
    pub recovery_wins: bool,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        Self {
            rewait_bound: 2,
            retry_backoff: 1,
            retry_backoff_cap: 8,
            retry_timeout: 32,
            recovery_wins: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_indexes_by_tick() {
        let mut plan = FaultPlan::new(vec![
            FaultEvent {
                at: 9,
                kind: FaultKind::DiskStreamLoss { count: 1 },
            },
            FaultEvent {
                at: 3,
                kind: FaultKind::BufferShrink { segments: 2 },
            },
        ]);
        plan.push(FaultEvent {
            at: 3,
            kind: FaultKind::DiskSlowdown {
                period: 2,
                duration: 5,
            },
        });
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events()[0].at, 3);
        assert_eq!(plan.events_at(3).len(), 2);
        // Stable for equal ticks: the pushed slowdown lands after the shrink.
        assert_eq!(
            plan.events_at(3)[0].kind,
            FaultKind::BufferShrink { segments: 2 }
        );
        assert_eq!(plan.events_at(9).len(), 1);
        assert!(plan.events_at(4).is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::empty().is_empty());
    }

    #[test]
    fn generate_is_deterministic_and_bounded() {
        let a = FaultPlan::generate(42, 1000, 10);
        let b = FaultPlan::generate(42, 1000, 10);
        assert_eq!(a, b, "same seed must give the same plan");
        assert_ne!(a, FaultPlan::generate(43, 1000, 10));
        assert_eq!(a.len(), 10);
        for e in a.events() {
            assert!(e.at >= 125 && e.at < 1000, "event at {} out of range", e.at);
        }
        // All five kinds appear with a 10-event cycle.
        let tags: Vec<_> = a.events().iter().map(|e| e.kind.tag()).collect();
        for tag in [
            "disk_stream_loss",
            "disk_outage",
            "disk_slowdown",
            "buffer_shrink",
            "buffer_restore",
        ] {
            assert!(tags.contains(&tag), "missing kind {tag}");
        }
    }

    #[test]
    fn json_embeds_kind_and_params() {
        let plan = FaultPlan::new(vec![FaultEvent {
            at: 7,
            kind: FaultKind::DiskOutage {
                count: 2,
                recover_after: 11,
            },
        }]);
        let j = plan.to_json();
        assert_eq!(
            j,
            "[{\"at\":7,\"kind\":\"disk_outage\",\"count\":2,\"recover_after\":11}]"
        );
        assert_eq!(FaultPlan::empty().to_json(), "[]");
    }

    #[test]
    fn generate_federation_pairs_outage_with_later_recovery() {
        let plan = FaultPlan::generate_federation(7, 1440, 14, 4);
        assert_eq!(plan, FaultPlan::generate_federation(7, 1440, 14, 4));
        assert_ne!(plan, FaultPlan::generate_federation(8, 1440, 14, 4));
        assert_ne!(plan, FaultPlan::generate_federation(7, 1440, 14, 2));
        assert_eq!(plan.len(), 14);
        // All seven kinds appear with a 14-event cycle.
        let tags: Vec<_> = plan.events().iter().map(|e| e.kind.tag()).collect();
        for tag in [
            "disk_stream_loss",
            "disk_outage",
            "disk_slowdown",
            "buffer_shrink",
            "buffer_restore",
            "shard_outage",
            "shard_recovery",
        ] {
            assert!(tags.contains(&tag), "missing kind {tag}");
        }
        // Shard indices stay inside the federation, and each recovery
        // lands strictly after the outage it pairs with.
        let mut outage_at: Option<(u64, u32)> = None;
        for e in plan.events() {
            match e.kind {
                FaultKind::ShardOutage { shard } => {
                    assert!(shard < 4);
                    outage_at = Some((e.at, shard));
                }
                FaultKind::ShardRecovery { shard } => {
                    assert!(shard < 4);
                    if let Some((at, s)) = outage_at.take() {
                        assert_eq!(shard, s, "recovery pairs with the last outage");
                        assert!(e.at > at, "recovery strictly after its outage");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn json_round_trips_every_kind() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 3,
                kind: FaultKind::DiskStreamLoss { count: 2 },
            },
            FaultEvent {
                at: 5,
                kind: FaultKind::DiskOutage {
                    count: 1,
                    recover_after: 9,
                },
            },
            FaultEvent {
                at: 7,
                kind: FaultKind::DiskSlowdown {
                    period: 2,
                    duration: 10,
                },
            },
            FaultEvent {
                at: 9,
                kind: FaultKind::BufferShrink { segments: 4 },
            },
            FaultEvent {
                at: 11,
                kind: FaultKind::BufferRestore { segments: 4 },
            },
            FaultEvent {
                at: 13,
                kind: FaultKind::ShardOutage { shard: 1 },
            },
            FaultEvent {
                at: 17,
                kind: FaultKind::ShardRecovery { shard: 1 },
            },
        ]);
        let parsed = FaultPlan::from_json(&plan.to_json());
        assert_eq!(parsed, Ok(plan));
        assert_eq!(FaultPlan::from_json("[]"), Ok(FaultPlan::empty()));
        // Whitespace-tolerant.
        let spaced = FaultPlan::from_json(
            " [ { \"at\" : 13 , \"kind\" : \"shard_outage\" , \"shard\" : 1 } ] ",
        );
        assert_eq!(
            spaced,
            Ok(FaultPlan::new(vec![FaultEvent {
                at: 13,
                kind: FaultKind::ShardOutage { shard: 1 },
            }]))
        );
    }

    #[test]
    fn from_json_rejects_malformed_input() {
        assert!(FaultPlan::from_json("").is_err());
        assert!(
            FaultPlan::from_json("[{\"at\":1}]").is_err(),
            "missing kind"
        );
        assert!(
            FaultPlan::from_json("[{\"kind\":\"disk_stream_loss\",\"count\":1}]").is_err(),
            "missing at"
        );
        assert!(
            FaultPlan::from_json("[{\"at\":1,\"kind\":\"warp_core_breach\"}]").is_err(),
            "unknown kind"
        );
        assert!(
            FaultPlan::from_json("[{\"at\":1,\"kind\":\"shard_outage\"}]").is_err(),
            "missing param"
        );
        assert!(
            FaultPlan::from_json("[{\"at\":1,\"kind\":\"shard_outage\",\"shard\":4294967296}]")
                .is_err(),
            "u32 overflow"
        );
        assert!(FaultPlan::from_json("[] trailing").is_err(), "trailing");
    }

    #[test]
    fn default_policy_orders_its_phases() {
        let p = DegradePolicy::default();
        assert!(p.rewait_bound < p.retry_timeout);
        assert!(p.retry_backoff <= p.retry_backoff_cap);
    }
}
