//! The shared dedicated-stream reserve.

use vod_workload::TimeWeighted;

/// Accountant for the pool of dedicated I/O streams VCR service draws
/// from — the resource whose exhaustion produces the paper's denial
/// (FF/RW refused at issue time; the viewer stays in the batch) and
/// starvation (a missed resume finds no stream) outcomes.
///
/// Both drivers use the same accountant: the simulator with the
/// configured reserve cap, the server with the static cap
/// `disk_streams − playback_reserved` (every stream not pre-allocated to
/// the restart schedule). Occupancy is tracked time-weighted so average
/// and peak holds are measured identically on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReserve {
    capacity: Option<u32>,
    in_use: u32,
    t0: f64,
    occupancy: TimeWeighted,
}

impl StreamReserve {
    /// A reserve capped at `capacity` streams; `None` = unbounded (the
    /// paper's §4 measurement setting).
    pub fn new(capacity: Option<u32>) -> Self {
        Self {
            capacity,
            in_use: 0,
            t0: 0.0,
            occupancy: TimeWeighted::new(0.0, 0.0),
        }
    }

    /// An unbounded reserve.
    pub fn unbounded() -> Self {
        Self::new(None)
    }

    /// A reserve of exactly `capacity` streams.
    pub fn with_capacity(capacity: u32) -> Self {
        Self::new(Some(capacity))
    }

    /// Configured cap, if any.
    pub fn capacity(&self) -> Option<u32> {
        self.capacity
    }

    /// Streams currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Try to take one stream at time `t`. Returns `false` — a denial or
    /// a starvation, the *caller's* policy decides which — when the cap
    /// is reached.
    pub fn try_acquire(&mut self, t: f64) -> bool {
        if let Some(cap) = self.capacity {
            if self.in_use >= cap {
                return false;
            }
        }
        self.in_use += 1;
        self.occupancy.add(t, 1.0);
        true
    }

    /// Return one stream at time `t`.
    ///
    /// # Panics
    /// Panics if nothing is held — releases must pair with acquires.
    pub fn release(&mut self, t: f64) {
        assert!(self.in_use > 0, "release without acquire");
        self.in_use -= 1;
        self.occupancy.add(t, -1.0);
    }

    /// Restart occupancy measurement at time `t`, keeping current holds
    /// (used to discard a warm-up period; the peak also resets to the
    /// current value).
    pub fn rebaseline(&mut self, t: f64) {
        self.t0 = t;
        self.occupancy = TimeWeighted::new(t, self.in_use as f64);
    }

    /// Time-averaged streams in use over `[baseline, until]`.
    pub fn average(&self, until: f64) -> f64 {
        self.occupancy.average(until, self.t0)
    }

    /// Peak streams in use since the last rebaseline.
    pub fn peak(&self) -> f64 {
        self.occupancy.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_denies_at_capacity() {
        let mut r = StreamReserve::with_capacity(2);
        assert!(r.try_acquire(0.0));
        assert!(r.try_acquire(1.0));
        assert!(!r.try_acquire(2.0), "cap reached");
        assert_eq!(r.in_use(), 2);
        r.release(3.0);
        assert!(r.try_acquire(4.0), "freed stream is reusable");
    }

    #[test]
    fn unbounded_never_denies() {
        let mut r = StreamReserve::unbounded();
        for i in 0..1000 {
            assert!(r.try_acquire(i as f64 * 0.1));
        }
        assert_eq!(r.in_use(), 1000);
    }

    #[test]
    fn occupancy_accounting() {
        let mut r = StreamReserve::unbounded();
        assert!(r.try_acquire(0.0)); // 1 held over [0, 10]
        assert!(r.try_acquire(10.0)); // 2 held over [10, 20]
        r.release(20.0); // 1 held over [20, 40]
        assert!((r.average(40.0) - (10.0 + 20.0 + 20.0) / 40.0).abs() < 1e-12);
        assert_eq!(r.peak(), 2.0);
    }

    #[test]
    fn rebaseline_discards_warmup() {
        let mut r = StreamReserve::unbounded();
        assert!(r.try_acquire(0.0));
        assert!(r.try_acquire(0.0));
        r.release(5.0);
        r.rebaseline(10.0); // 1 held from here on
        assert!((r.average(20.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.peak(), 1.0, "peak resets to current holds");
        assert_eq!(r.in_use(), 1, "holds survive the rebaseline");
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn unbalanced_release_panics() {
        let mut r = StreamReserve::unbounded();
        r.release(0.0);
    }
}
