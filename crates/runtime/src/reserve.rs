//! The shared dedicated-stream reserve.

use vod_workload::TimeWeighted;

/// Accountant for the pool of dedicated I/O streams VCR service draws
/// from — the resource whose exhaustion produces the paper's denial
/// (FF/RW refused at issue time; the viewer stays in the batch) and
/// starvation (a missed resume finds no stream) outcomes.
///
/// Both drivers use the same accountant: the simulator with the
/// configured reserve cap, the server with the static cap
/// `disk_streams − playback_reserved` (every stream not pre-allocated to
/// the restart schedule). Occupancy is tracked time-weighted so average
/// and peak holds are measured identically on both sides.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReserve {
    capacity: Option<u32>,
    in_use: u32,
    failed: u32,
    denied_transient: u64,
    denied_permanent: u64,
    t0: f64,
    occupancy: TimeWeighted,
}

impl StreamReserve {
    /// A reserve capped at `capacity` streams; `None` = unbounded (the
    /// paper's §4 measurement setting).
    pub fn new(capacity: Option<u32>) -> Self {
        Self {
            capacity,
            in_use: 0,
            failed: 0,
            denied_transient: 0,
            denied_permanent: 0,
            t0: 0.0,
            occupancy: TimeWeighted::new(0.0, 0.0),
        }
    }

    /// An unbounded reserve.
    pub fn unbounded() -> Self {
        Self::new(None)
    }

    /// A reserve of exactly `capacity` streams.
    pub fn with_capacity(capacity: u32) -> Self {
        Self::new(Some(capacity))
    }

    /// Configured cap, if any.
    pub fn capacity(&self) -> Option<u32> {
        self.capacity
    }

    /// Streams currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Streams removed from service by injected faults.
    pub fn failed(&self) -> u32 {
        self.failed
    }

    /// Streams currently free (`capacity − in_use − failed`); `None` for
    /// an unbounded reserve.
    pub fn free(&self) -> Option<u32> {
        self.capacity
            .map(|cap| cap.saturating_sub(self.in_use).saturating_sub(self.failed))
    }

    /// Try to take one stream at time `t`. Returns `false` — a denial or
    /// a starvation, the *caller's* policy decides which — when the cap
    /// (less any failed streams) is reached.
    pub fn try_acquire(&mut self, t: f64) -> bool {
        if let Some(cap) = self.capacity {
            if self.in_use + self.failed >= cap {
                return false;
            }
        }
        self.in_use += 1;
        self.occupancy.add(t, 1.0);
        true
    }

    /// Remove up to `count` **free** streams from service (fault
    /// injection). Returns how many were actually removed; in-use holds
    /// are never revoked here — a driver that must revoke live leases does
    /// so itself and releases them through [`StreamReserve::release`]
    /// before re-failing. Unbounded reserves cannot lose streams (0).
    ///
    /// Conservation — `in_use + free + failed == capacity` — holds across
    /// every call.
    pub fn fail_streams(&mut self, count: u32) -> u32 {
        let Some(free) = self.free() else { return 0 };
        let removed = count.min(free);
        self.failed += removed;
        removed
    }

    /// Return up to `count` previously failed streams to service. Returns
    /// how many actually recovered.
    pub fn recover_streams(&mut self, count: u32) -> u32 {
        let recovered = count.min(self.failed);
        self.failed -= recovered;
        recovered
    }

    /// Record `count` classified denial outcomes: `transient` when a
    /// later retry of the same request obtained a stream, permanent when
    /// the request was refused for good (issue-time Erlang loss, or a
    /// degraded session whose retry sequence timed out). Classification
    /// happens at resolution time, so totals are exact, not provisional.
    pub fn record_denials(&mut self, count: u64, transient: bool) {
        if transient {
            self.denied_transient += count;
        } else {
            self.denied_permanent += count;
        }
    }

    /// Denials whose retry later succeeded.
    pub fn denied_transient(&self) -> u64 {
        self.denied_transient
    }

    /// Denials refused for good (no retry, or retries timed out).
    pub fn denied_permanent(&self) -> u64 {
        self.denied_permanent
    }

    /// All classified denials.
    pub fn denied_total(&self) -> u64 {
        self.denied_transient + self.denied_permanent
    }

    /// Return one stream at time `t`.
    ///
    /// # Panics
    /// Panics if nothing is held — releases must pair with acquires.
    pub fn release(&mut self, t: f64) {
        assert!(self.in_use > 0, "release without acquire");
        self.in_use -= 1;
        self.occupancy.add(t, -1.0);
    }

    /// Restart occupancy measurement at time `t`, keeping current holds
    /// (used to discard a warm-up period; the peak also resets to the
    /// current value). Denial tallies reset too — they are measured-window
    /// statistics like occupancy — but failed streams stay failed: a fault
    /// is a physical condition, not a measurement.
    pub fn rebaseline(&mut self, t: f64) {
        self.t0 = t;
        self.occupancy = TimeWeighted::new(t, self.in_use as f64);
        self.denied_transient = 0;
        self.denied_permanent = 0;
    }

    /// Time-averaged streams in use over `[baseline, until]`.
    pub fn average(&self, until: f64) -> f64 {
        self.occupancy.average(until, self.t0)
    }

    /// Peak streams in use since the last rebaseline.
    pub fn peak(&self) -> f64 {
        self.occupancy.peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_denies_at_capacity() {
        let mut r = StreamReserve::with_capacity(2);
        assert!(r.try_acquire(0.0));
        assert!(r.try_acquire(1.0));
        assert!(!r.try_acquire(2.0), "cap reached");
        assert_eq!(r.in_use(), 2);
        r.release(3.0);
        assert!(r.try_acquire(4.0), "freed stream is reusable");
    }

    #[test]
    fn unbounded_never_denies() {
        let mut r = StreamReserve::unbounded();
        for i in 0..1000 {
            assert!(r.try_acquire(i as f64 * 0.1));
        }
        assert_eq!(r.in_use(), 1000);
    }

    #[test]
    fn occupancy_accounting() {
        let mut r = StreamReserve::unbounded();
        assert!(r.try_acquire(0.0)); // 1 held over [0, 10]
        assert!(r.try_acquire(10.0)); // 2 held over [10, 20]
        r.release(20.0); // 1 held over [20, 40]
        assert!((r.average(40.0) - (10.0 + 20.0 + 20.0) / 40.0).abs() < 1e-12);
        assert_eq!(r.peak(), 2.0);
    }

    #[test]
    fn rebaseline_discards_warmup() {
        let mut r = StreamReserve::unbounded();
        assert!(r.try_acquire(0.0));
        assert!(r.try_acquire(0.0));
        r.release(5.0);
        r.rebaseline(10.0); // 1 held from here on
        assert!((r.average(20.0) - 1.0).abs() < 1e-12);
        assert_eq!(r.peak(), 1.0, "peak resets to current holds");
        assert_eq!(r.in_use(), 1, "holds survive the rebaseline");
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn unbalanced_release_panics() {
        let mut r = StreamReserve::unbounded();
        r.release(0.0);
    }

    #[test]
    fn failed_streams_shrink_effective_capacity() {
        let mut r = StreamReserve::with_capacity(3);
        assert!(r.try_acquire(0.0));
        assert_eq!(r.fail_streams(5), 2, "only free streams can fail");
        assert_eq!(r.failed(), 2);
        assert_eq!(r.free(), Some(0));
        assert!(!r.try_acquire(1.0), "failed streams are not acquirable");
        assert_eq!(r.in_use() + r.free().unwrap() + r.failed(), 3);
        assert_eq!(r.recover_streams(1), 1);
        assert!(r.try_acquire(2.0), "recovered stream serves again");
        assert_eq!(r.recover_streams(9), 1, "recovery capped at failed count");
        assert_eq!(r.failed(), 0);
    }

    #[test]
    fn unbounded_reserve_cannot_fail() {
        let mut r = StreamReserve::unbounded();
        assert_eq!(r.fail_streams(4), 0);
        assert_eq!(r.failed(), 0);
        assert_eq!(r.free(), None);
        assert!(r.try_acquire(0.0));
    }

    #[test]
    fn denial_taxonomy_tallies_and_rebaselines() {
        let mut r = StreamReserve::with_capacity(1);
        r.record_denials(2, false);
        r.record_denials(3, true);
        assert_eq!(r.denied_permanent(), 2);
        assert_eq!(r.denied_transient(), 3);
        assert_eq!(r.denied_total(), 5);
        assert!(r.try_acquire(0.0));
        assert_eq!(r.fail_streams(1), 0, "no free stream left to fail");
        r.rebaseline(10.0);
        assert_eq!(r.denied_total(), 0, "denials are measured-window stats");
        assert_eq!(r.in_use(), 1, "holds survive the rebaseline");
    }
}
