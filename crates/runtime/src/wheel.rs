//! Hierarchical timer wheel keyed on the virtual-time tick grid.
//!
//! Both drivers used to find "what happens at tick `t`" by scanning every
//! session (`vod-server`) or popping a single global `BinaryHeap`
//! (`vod-sim`). The wheel makes the schedule-side of that O(1): an item
//! scheduled for tick `due` is filed into one of [`LEVELS`] wheels of
//! [`SLOTS`] slots each — level 0 resolves single ticks, level `l`
//! resolves runs of `64^l` ticks — and cascades down one level each time
//! the cursor crosses a level boundary (Varghese–Lauck hashed wheels).
//! Per-level `u64` occupancy bitmaps make "next scheduled tick" a couple
//! of `trailing_zeros` instructions.
//!
//! # Determinism contract
//!
//! [`TimerWheel::drain_tick`] returns items in exactly the order a
//! `BTreeMap<u64, Vec<T>>` keyed by due tick would: ascending due tick,
//! FIFO within a tick. Cascading between levels can physically reorder
//! entries inside a slot, so every entry carries an internal monotone
//! sequence number and each drained slot is sorted by it before being
//! returned. A property test in `tests/prop_wheel_arena.rs` pins this
//! equivalence against the map model under random schedules.

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level (64, so one `u64` bitmap covers a level).
const SLOTS: u64 = 1 << SLOT_BITS;
/// Wheel levels; together they span `64^4 = 2^24` ticks before the
/// overflow list takes over.
const LEVELS: usize = 4;

/// One scheduled entry: payload plus its due tick and FIFO tiebreak.
struct Entry<T> {
    due: u64,
    seq: u64,
    item: T,
}

/// One wheel level: 64 buckets plus an occupancy bitmap (bit `i` set ⇔
/// bucket `i` non-empty).
struct Level<T> {
    occupied: u64,
    slots: Vec<Vec<Entry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// Hierarchical timer wheel over the integer virtual-time grid.
///
/// The cursor starts at tick 0 and only moves forward, one
/// [`TimerWheel::drain_tick`] call at a time. Scheduling in the past is
/// clamped to the cursor — the item fires on the very next drain — which
/// mirrors how both drivers treat "due now": start-of-minute events
/// scheduled at the current minute run within the current tick.
pub struct TimerWheel<T> {
    /// Next undrained tick.
    now: u64,
    /// Monotone schedule counter; the FIFO tiebreak within a tick.
    seq: u64,
    /// Scheduled items not yet drained.
    len: usize,
    levels: Vec<Level<T>>,
    /// Items due beyond the top level's span; refiled as the top window
    /// rolls over.
    overflow: Vec<Entry<T>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> Self {
        Self {
            now: 0,
            seq: 0,
            len: 0,
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            overflow: Vec::new(),
        }
    }

    /// Next undrained tick (the cursor).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Scheduled items not yet drained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket a continuous event time onto the integer tick grid (floor;
    /// negative or NaN inputs saturate to tick 0 under Rust's float→int
    /// `as` semantics). This is event-queue bucketing — *which wheel slot
    /// an event lands in* — not partition-geometry quantization; geometry
    /// rounding stays single-sourced in the quantize module.
    pub fn tick_of(time: f64) -> u64 {
        time as u64
    }

    /// Schedule `item` for tick `due`. A `due` behind the cursor is
    /// clamped to the cursor, so the item fires on the next drain.
    pub fn schedule(&mut self, due: u64, item: T) {
        let due = due.max(self.now);
        self.seq += 1;
        let entry = Entry {
            due,
            seq: self.seq,
            item,
        };
        self.file(entry);
        self.len += 1;
    }

    /// Smallest level whose current window contains `due`, or `None` for
    /// the overflow list.
    fn level_for(&self, due: u64) -> Option<usize> {
        (0..LEVELS).find(|&l| {
            let shift = SLOT_BITS * (l as u32 + 1);
            due >> shift == self.now >> shift
        })
    }

    /// File an entry into the level/slot its due tick selects at the
    /// current cursor position.
    fn file(&mut self, entry: Entry<T>) {
        match self.level_for(entry.due) {
            Some(l) => {
                let slot = ((entry.due >> (SLOT_BITS * l as u32)) & (SLOTS - 1)) as usize;
                self.levels[l].occupied |= 1 << slot;
                self.levels[l].slots[slot].push(entry);
            }
            None => self.overflow.push(entry),
        }
    }

    /// Move the cursor to `new_now`, cascading higher levels down when a
    /// level boundary is crossed. Callers never skip past an un-cascaded
    /// boundary: `new_now` stays within the current level-0 window plus
    /// its closing boundary.
    fn bump_to(&mut self, new_now: u64) {
        debug_assert!(new_now > self.now && new_now <= (self.now | (SLOTS - 1)) + 1);
        self.now = new_now;
        if self.now.is_multiple_of(SLOTS) {
            self.cascade();
        }
    }

    /// The cursor just landed on a level-0 window boundary: pull every
    /// level whose window also rolled over down one level (highest level
    /// first, so entries hop at most once per call), and refile the
    /// overflow list when the top window rolled.
    fn cascade(&mut self) {
        debug_assert!(self.now.is_multiple_of(SLOTS));
        if self.now.is_multiple_of(1 << (SLOT_BITS * LEVELS as u32)) {
            let overflow = std::mem::take(&mut self.overflow);
            for entry in overflow {
                self.file(entry);
            }
        }
        for l in (1..LEVELS).rev() {
            if !self.now.is_multiple_of(1 << (SLOT_BITS * l as u32)) {
                continue;
            }
            let slot = ((self.now >> (SLOT_BITS * l as u32)) & (SLOTS - 1)) as usize;
            if self.levels[l].occupied & (1 << slot) == 0 {
                continue;
            }
            self.levels[l].occupied &= !(1 << slot);
            let entries = std::mem::take(&mut self.levels[l].slots[slot]);
            for entry in entries {
                self.file(entry);
            }
        }
    }

    /// Remove and return every item due at or before tick `t`, in
    /// ascending due-tick order with FIFO schedule order within a tick
    /// (the `BTreeMap<u64, Vec<T>>` contract). Advances the cursor to
    /// `t + 1`; a `t` behind the cursor returns nothing and moves nothing.
    pub fn drain_tick(&mut self, t: u64) -> Vec<T> {
        let mut out = Vec::new();
        while self.now <= t {
            let base = self.now & !(SLOTS - 1);
            let cursor_bit = (self.now - base) as u32;
            let pending = self.levels[0].occupied & ((!0u64) << cursor_bit);
            let next_occupied = (pending != 0).then(|| base + u64::from(pending.trailing_zeros()));
            match next_occupied {
                Some(due) if due <= t => {
                    let slot = (due - base) as usize;
                    self.levels[0].occupied &= !(1 << slot);
                    let mut entries = std::mem::take(&mut self.levels[0].slots[slot]);
                    entries.sort_unstable_by_key(|e| e.seq);
                    self.len -= entries.len();
                    out.extend(entries.into_iter().map(|e| e.item));
                    self.now = due;
                    self.bump_to(due + 1);
                }
                _ => {
                    // Nothing more due inside this level-0 window.
                    let window_last = base + (SLOTS - 1);
                    if window_last > t {
                        // `t + 1 ≤ window_last`: same window, no cascade.
                        self.now = t + 1;
                    } else {
                        self.bump_to(window_last + 1);
                    }
                }
            }
        }
        out
    }

    /// Earliest scheduled due tick, if any. `drain_tick(next_due())`
    /// fast-forwards an idle wheel without walking empty ticks one by one.
    pub fn next_due(&self) -> Option<u64> {
        let base = self.now & !(SLOTS - 1);
        let cursor_bit = (self.now - base) as u32;
        let pending = self.levels[0].occupied & ((!0u64) << cursor_bit);
        if pending != 0 {
            return Some(base + u64::from(pending.trailing_zeros()));
        }
        // Higher levels: slot index is monotone in due within the open
        // window, and level `l` entries are all earlier than level `l+1`
        // entries, so the first occupied slot of the first occupied level
        // holds the minimum.
        for level in &self.levels[1..] {
            if level.occupied != 0 {
                let slot = level.occupied.trailing_zeros() as usize;
                return level.slots[slot].iter().map(|e| e.due).min();
            }
        }
        self.overflow.iter().map(|e| e.due).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_due_then_fifo_order() {
        let mut w = TimerWheel::new();
        w.schedule(5, "a");
        w.schedule(3, "b");
        w.schedule(5, "c");
        w.schedule(0, "d");
        assert_eq!(w.len(), 4);
        assert_eq!(w.next_due(), Some(0));
        assert_eq!(w.drain_tick(0), vec!["d"]);
        assert_eq!(w.drain_tick(4), vec!["b"]);
        assert_eq!(w.next_due(), Some(5));
        assert_eq!(w.drain_tick(10), vec!["a", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_due_clamps_to_cursor() {
        let mut w = TimerWheel::new();
        assert!(w.drain_tick(99).is_empty());
        w.schedule(3, "late");
        assert_eq!(w.next_due(), Some(100));
        assert_eq!(w.drain_tick(100), vec!["late"]);
    }

    #[test]
    fn cascades_across_level_boundaries() {
        let mut w = TimerWheel::new();
        // One item per level, plus overflow.
        w.schedule(7, 7u64);
        w.schedule(100, 100);
        w.schedule(5_000, 5_000);
        w.schedule(300_000, 300_000);
        w.schedule(20_000_000, 20_000_000);
        let mut got = Vec::new();
        while let Some(due) = w.next_due() {
            for item in w.drain_tick(due) {
                got.push((due, item));
            }
        }
        assert_eq!(
            got,
            vec![
                (7, 7),
                (100, 100),
                (5_000, 5_000),
                (300_000, 300_000),
                (20_000_000, 20_000_000)
            ]
        );
    }

    #[test]
    fn fifo_survives_cascading() {
        let mut w = TimerWheel::new();
        // Same due tick reached via different initial levels: one filed
        // while the tick was in a level-1 window, one filed after the
        // cursor entered its level-0 window.
        w.schedule(130, "first");
        assert_eq!(w.drain_tick(127).len(), 0);
        w.schedule(130, "second");
        assert_eq!(w.drain_tick(130), vec!["first", "second"]);
    }

    #[test]
    fn tick_of_floors_and_saturates() {
        assert_eq!(TimerWheel::<()>::tick_of(0.0), 0);
        assert_eq!(TimerWheel::<()>::tick_of(41.999), 41);
        assert_eq!(TimerWheel::<()>::tick_of(-3.0), 0);
    }
}
