//! Property-based tests of the analytic model: probability bounds,
//! monotonicity, decomposition-vs-oracle agreement, and degenerate-case
//! behavior under arbitrary valid configurations.

#![allow(clippy::unwrap_used, clippy::float_cmp)]
use proptest::prelude::*;

use vod_dist::kinds::{Exponential, Gamma, Uniform};
use vod_dist::DurationDist;
use vod_model::{
    p_hit_ff, p_hit_ff_direct, p_hit_pause, p_hit_rw, p_hit_single_dist, ModelOptions, Rates,
    SystemParams, VcrMix,
};

fn any_dist() -> impl Strategy<Value = Box<dyn DurationDist>> {
    prop_oneof![
        (0.5f64..30.0)
            .prop_map(|m| Box::new(Exponential::with_mean(m).unwrap()) as Box<dyn DurationDist>),
        ((0.5f64..6.0), (0.5f64..10.0))
            .prop_map(|(k, s)| Box::new(Gamma::new(k, s).unwrap()) as Box<dyn DurationDist>),
        (1.0f64..40.0)
            .prop_map(|hi| Box::new(Uniform::new(0.0, hi).unwrap()) as Box<dyn DurationDist>),
    ]
}

fn any_params() -> impl Strategy<Value = SystemParams> {
    // l ∈ [30, 180], B as a fraction of l, n small enough to keep each
    // evaluation cheap, rates with FF strictly above playback.
    (
        30.0f64..180.0,
        0.0f64..=1.0,
        1u32..40,
        1.2f64..8.0,
        0.3f64..8.0,
    )
        .prop_map(|(l, bfrac, n, ff, rw)| {
            SystemParams::new(l, bfrac * l, n, Rates::new(1.0, ff, rw).unwrap()).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_component_is_a_probability(params in any_params(), d in any_dist()) {
        let opts = ModelOptions::default();
        let ff = p_hit_ff(&params, d.as_ref(), &opts);
        prop_assert!(ff.within >= -1e-9, "within {}", ff.within);
        prop_assert!(ff.end >= -1e-9 && ff.end <= 1.0 + 1e-9);
        for (i, j) in ff.jumps.iter().enumerate() {
            prop_assert!(*j >= -1e-7, "jump {i} = {j} ({params:?})");
        }
        let t = ff.total();
        prop_assert!((0.0..=1.0 + 1e-6).contains(&t), "FF total {t} ({params:?}, {d:?})");

        let rw = p_hit_rw(&params, d.as_ref(), &opts).total();
        prop_assert!((0.0..=1.0 + 1e-6).contains(&rw), "RW total {rw}");

        let pau = p_hit_pause(&params, d.as_ref(), &opts);
        prop_assert!((0.0..=1.0 + 1e-6).contains(&pau), "PAU total {pau}");
    }

    #[test]
    fn mixed_total_is_convex_combination(params in any_params(), d in any_dist(),
                                         ff_w in 0.0f64..1.0, rw_frac in 0.0f64..1.0) {
        let rw_w = (1.0 - ff_w) * rw_frac;
        let pau_w = 1.0 - ff_w - rw_w;
        let mix = VcrMix::new(ff_w, rw_w, pau_w).unwrap();
        let opts = ModelOptions::default();
        let mixed = p_hit_single_dist(&params, d.as_ref(), &mix, &opts).total;
        let ff = p_hit_single_dist(&params, d.as_ref(), &VcrMix::ff_only(), &opts).total;
        let rw = p_hit_single_dist(&params, d.as_ref(), &VcrMix::rw_only(), &opts).total;
        let pau = p_hit_single_dist(&params, d.as_ref(), &VcrMix::pause_only(), &opts).total;
        let lo = ff.min(rw).min(pau) - 1e-9;
        let hi = ff.max(rw).max(pau) + 1e-9;
        prop_assert!((lo..=hi).contains(&mixed), "mixed {mixed} outside [{lo}, {hi}]");
    }

    #[test]
    fn more_buffer_never_hurts(l in 60.0f64..150.0, n in 2u32..30,
                               b1 in 0.0f64..0.5, extra in 0.0f64..0.5,
                               d in any_dist()) {
        let opts = ModelOptions::default();
        let rates = Rates::paper();
        let small = SystemParams::new(l, b1 * l, n, rates).unwrap();
        let large = SystemParams::new(l, (b1 + extra).min(1.0) * l, n, rates).unwrap();
        let mix = VcrMix::paper_fig7d();
        let p_small = p_hit_single_dist(&small, d.as_ref(), &mix, &opts).total;
        let p_large = p_hit_single_dist(&large, d.as_ref(), &mix, &opts).total;
        prop_assert!(p_large >= p_small - 1e-6, "B↑ lowered P(hit): {p_small} -> {p_large}");
    }

    #[test]
    fn ff_decomposition_equals_direct_oracle(l in 60.0f64..150.0, n in 2u32..16,
                                             bfrac in 0.05f64..0.95, d in any_dist()) {
        let params = SystemParams::new(l, bfrac * l, n, Rates::paper()).unwrap();
        let opts = ModelOptions::default();
        let dec = p_hit_ff(&params, d.as_ref(), &opts).total();
        let dir = p_hit_ff_direct(&params, d.as_ref(), &opts);
        prop_assert!((dec - dir).abs() < 2e-3,
            "l={l} B={} n={n} {d:?}: {dec} vs {dir}", params.buffer());
    }

    #[test]
    fn pure_batching_only_end_hits(l in 60.0f64..150.0, n in 1u32..40, d in any_dist()) {
        let params = SystemParams::new(l, 0.0, n, Rates::paper()).unwrap();
        let opts = ModelOptions::default();
        let ff = p_hit_ff(&params, d.as_ref(), &opts);
        prop_assert_eq!(ff.within, 0.0);
        prop_assert!(ff.jumps.is_empty());
        prop_assert_eq!(p_hit_rw(&params, d.as_ref(), &opts).total(), 0.0);
        prop_assert_eq!(p_hit_pause(&params, d.as_ref(), &opts), 0.0);
    }

    #[test]
    fn tiny_sweeps_hit_up_to_the_end_boundary(l in 60.0f64..150.0, n in 2u32..20) {
        // With full buffering and sweeps far smaller than a partition,
        // FF/RW hits are near-certain; PAU loses exactly the end-of-movie
        // sliver: for x→0, P(hit|PAU) → 1 − b/(2l) (a viewer whose V_f
        // overruns the movie end has no live trailing window). Mixed with
        // the Figure-7d weights the total approaches 1 − 0.6·b/(2l).
        let params = SystemParams::new(l, l, n, Rates::paper()).unwrap();
        let d = Exponential::with_mean(0.01).unwrap();
        let opts = ModelOptions::default();
        let mix = VcrMix::paper_fig7d();
        let p = p_hit_single_dist(&params, &d, &mix, &opts).total;
        let b_over_l = params.partition_len() / l;
        let asymptote = 1.0 - 0.6 * b_over_l / 2.0;
        prop_assert!(
            (p - asymptote).abs() < 0.02,
            "tiny sweeps: P(hit) = {p}, asymptote {asymptote}"
        );
    }
}

/// Committed proptest regression (`prop_model.proptest-regressions`:
/// shrinks to `l = 60.0, n = 2`) pinned as a deterministic case: the
/// vendored proptest stand-in cannot replay upstream seed files, so the
/// shrunken input is encoded explicitly.
///
/// Diagnosis: the property itself holds over its whole domain (a dense
/// scan of l ∈ [60, 150) × n ∈ 2..20 puts the worst error at 3.3e-5
/// against the 0.02 tolerance). The failure the seed recorded came from
/// the model side — `p_hit_rw`'s jump-summation cap assumed γ ≥ ½ and
/// tripped a debug assertion for slow rewind rates (see
/// `regression_rw_jump_cap_slow_rewind` below for the direct pin); with
/// the cap scaled by 1/γ the recorded case passes.
#[test]
fn regression_tiny_sweeps_l60_n2() {
    let l = 60.0;
    let n = 2;
    let params = SystemParams::new(l, l, n, Rates::paper()).unwrap();
    let d = Exponential::with_mean(0.01).unwrap();
    let opts = ModelOptions::default();
    let mix = VcrMix::paper_fig7d();
    let p = p_hit_single_dist(&params, &d, &mix, &opts).total;
    let b_over_l = params.partition_len() / l;
    let asymptote = 1.0 - 0.6 * b_over_l / 2.0;
    assert!(
        (p - asymptote).abs() < 0.02,
        "tiny sweeps: P(hit) = {p}, asymptote {asymptote}"
    );
}

/// Root cause behind the recorded regression: with a rewind rate below
/// playback, γ = R_RW/(R_PB + R_RW) drops under ½ and the i-th-partition
/// sum in `p_hit_rw` needs up to n/γ + B/l terms — more than the old
/// `2n + 8` defensive cap, which fired its debug assertion (and silently
/// truncated the sum in release builds). Inputs taken from a failing
/// generated case (γ ≈ 0.33, n = 13 needs ~40 terms, old cap 34).
#[test]
fn regression_rw_jump_cap_slow_rewind() {
    let params = SystemParams::new(
        80.47372282852993,
        44.24469799093355,
        13,
        Rates::new(1.0, 1.3463351793693608, 0.4926836787013574).unwrap(),
    )
    .unwrap();
    let d = Gamma::new(4.266682857453262, 9.310237129623188).unwrap();
    let opts = ModelOptions::default();
    let rw = p_hit_rw(&params, &d, &opts);
    let total = rw.total();
    assert!(
        (0.0..=1.0 + 1e-6).contains(&total),
        "RW total out of range: {total}"
    );
    // The sum must run until the geometric termination condition
    // (γ(il/n − b) ≥ l, here 39 terms), not stop at the old 2n + 8 = 34
    // iteration cap.
    assert!(
        rw.jumps.len() > 34,
        "jump sum truncated at the old cap: {} terms",
        rw.jumps.len()
    );
}
