//! Expected dedicated-stream hold time after a miss, with and without
//! piggyback merge-back.
//!
//! The paper's phase-2 story: a viewer whose resume *misses* every
//! partition keeps his dedicated I/O stream "until he can join a
//! partition, for instance, using the piggybacking technique [1, 7, 9]".
//! This module quantifies that residual hold, the missing input to
//! reserve sizing (`vod_sizing::VcrLoad::mean_miss_hold`):
//!
//! * **Without piggybacking** the stream is held until the movie ends:
//!   with the resume position `p ~ U[0, l]`, `E[hold] = l/2` real minutes.
//! * **With piggybacking** at display rate `(1 + δ)·R_PB`, the viewer
//!   gains on the co-moving pattern at `δ` movie minutes per real minute.
//!   A missed position sits a forward distance `d ~ U[0, w]` from the
//!   trailing edge of the next window (gaps have length `w` and misses
//!   are uniform over them), so the merge takes `d/δ` real minutes —
//!   capped by the movie end, reached after `(l − p)/(1 + δ)` real
//!   minutes.
//!
//! The model ignores a further VCR operation arriving before the merge
//! (which would only shorten the hold) and the sliver of probability that
//! the gap ahead is truncated by the movie end — both conservative.

use crate::SystemParams;

/// Real minutes to close a forward distance of `gap` movie minutes at a
/// piggyback display-rate surplus of `delta` (fraction of playback rate).
pub fn merge_time(gap: f64, delta: f64) -> f64 {
    assert!(delta > 0.0, "piggyback surplus must be positive");
    assert!(gap >= 0.0, "gap cannot be negative");
    gap / delta
}

/// Expected dedicated-stream hold after a miss, in real minutes,
/// *without* piggybacking: the stream is held until the movie ends.
pub fn expected_miss_hold_plain(params: &SystemParams) -> f64 {
    params.movie_len() / 2.0
}

/// Expected dedicated-stream hold after a miss, in real minutes, with
/// piggybacking at rate surplus `delta` (e.g. 0.05 for +5% display rate,
/// the threshold the piggybacking literature (the paper's ref. \[7\]) treats as
/// imperceptible).
///
/// Averages `min(d/δ, (l − p)/(1 + δ))` over `d ~ U[0, w]`,
/// `p ~ U[0, l]`:
///
/// ```text
/// E = (1/(l·w)) ∫₀^l ∫₀^w min(d/δ, (l − p)/(1+δ)) dd dp
/// ```
///
/// evaluated in closed form by splitting at `d* = δ(l−p)/(1+δ)`.
pub fn expected_miss_hold_piggyback(params: &SystemParams, delta: f64) -> f64 {
    assert!(delta > 0.0, "piggyback surplus must be positive");
    let l = params.movie_len();
    let w = params.max_wait();
    if w <= 0.0 {
        // No gaps: a miss can only be the movie-end sliver; the hold is
        // the remaining playback at the faster rate.
        return l / (2.0 * (1.0 + delta));
    }
    // Inner integral over d for fixed remaining time r = (l−p)/(1+δ):
    //   d* = min(w, δ·r)
    //   ∫₀^w min(d/δ, r) dd = d*²/(2δ) + (w − d*)·r.
    // Outer average over p — equivalently r uniform on [0, l/(1+δ)].
    integrate_uniform(l / (1.0 + delta), w, delta)
}

/// `(1/r_max) ∫₀^{r_max} [ d*²/(2δ) + (w − d*) r ] dr`, `d* = min(w, δr)`.
fn integrate_uniform(r_max: f64, w: f64, delta: f64) -> f64 {
    let r_w = (w / delta).min(r_max); // below r_w: d* = δr; above: d* = w
                                      // Piece 1: r ∈ [0, r_w], d* = δr:
                                      //   value(r) = δr²/2 + (w − δr)·r = wr − δr²/2.
                                      //   ∫ = w r_w²/2 − δ r_w³/6.
    let piece1 = w * r_w * r_w / 2.0 - delta * r_w.powi(3) / 6.0;
    // Piece 2: r ∈ [r_w, r_max], d* = w: value = w²/(2δ).
    let piece2 = (r_max - r_w).max(0.0) * w * w / (2.0 * delta);
    ((piece1 + piece2) / r_max) / w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rates;
    use vod_dist::rng::{seeded, u01};

    fn params(l: f64, b: f64, n: u32) -> SystemParams {
        SystemParams::new(l, b, n, Rates::paper()).unwrap()
    }

    #[test]
    fn merge_time_linear() {
        assert_eq!(merge_time(5.0, 0.05), 100.0);
        assert_eq!(merge_time(0.0, 0.05), 0.0);
    }

    #[test]
    fn plain_hold_is_half_movie() {
        assert_eq!(expected_miss_hold_plain(&params(120.0, 60.0, 20)), 60.0);
    }

    #[test]
    fn piggyback_slashes_holds() {
        // l = 120, n = 20, B = 60 → w = 3. At +5%, merging a ≤3-minute
        // gap takes ≤ 60 real minutes and on average far less.
        let p = params(120.0, 60.0, 20);
        let pb = expected_miss_hold_piggyback(&p, 0.05);
        let plain = expected_miss_hold_plain(&p);
        assert!(pb < plain, "{pb} vs {plain}");
        // The uncapped average merge would be E[d]/δ = 1.5/0.05 = 30;
        // the movie-end cap only lowers it.
        assert!(pb <= 30.0 + 1e-9, "pb {pb}");
        assert!(pb > 10.0, "pb {pb} suspiciously small");
    }

    #[test]
    fn matches_monte_carlo() {
        let p = params(120.0, 60.0, 20);
        for &delta in &[0.05, 0.1, 0.3] {
            let analytic = expected_miss_hold_piggyback(&p, delta);
            let mut rng = seeded(33);
            let n = 400_000;
            let mut acc = 0.0;
            for _ in 0..n {
                let d = p.max_wait() * u01(&mut rng);
                let pos = p.movie_len() * u01(&mut rng);
                let r = (p.movie_len() - pos) / (1.0 + delta);
                acc += (d / delta).min(r);
            }
            let mc = acc / n as f64;
            assert!(
                (analytic - mc).abs() < 0.01 * mc.max(1.0),
                "delta={delta}: analytic {analytic} vs MC {mc}"
            );
        }
    }

    #[test]
    fn faster_piggyback_shorter_holds() {
        let p = params(120.0, 60.0, 20);
        let slow = expected_miss_hold_piggyback(&p, 0.02);
        let fast = expected_miss_hold_piggyback(&p, 0.10);
        assert!(fast < slow, "{fast} vs {slow}");
    }

    #[test]
    fn zero_gap_configuration() {
        // w = 0 (full buffering): only the end sliver can miss.
        let p = params(120.0, 120.0, 20);
        let h = expected_miss_hold_piggyback(&p, 0.05);
        assert!((h - 120.0 / (2.0 * 1.05)).abs() < 1e-9);
    }
}
