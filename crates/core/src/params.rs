//! System parameters: the tuple `(l, B, n, w, R_FF, R_PB, R_RW)` of the
//! paper's `P(hit) = ξ(l, B, n, w, R_FF, R_PB, R_RW)` (§3.1.4), plus the
//! catch-up geometry of Eq. (1).

use crate::ModelError;

/// Display rates for normal playback and the two moving VCR operations.
///
/// Only the ratios matter; the convention throughout the workspace is
/// `playback = 1.0` so that one "time unit" is one movie minute. Rates are
/// multiples of the playback rate (the paper's §4 experiments use
/// `R_FF = R_RW = 3 R_PB`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    playback: f64,
    fast_forward: f64,
    rewind: f64,
}

impl Rates {
    /// Construct rates. Requires `playback > 0`, `fast_forward > playback`
    /// (otherwise a FF can never catch up with a stream) and `rewind > 0`.
    pub fn new(playback: f64, fast_forward: f64, rewind: f64) -> Result<Self, ModelError> {
        let check = |name, v: f64, req: &'static str, ok: bool| {
            if ok {
                Ok(v)
            } else {
                Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    requirement: req,
                })
            }
        };
        check(
            "playback",
            playback,
            "finite and > 0",
            playback.is_finite() && playback > 0.0,
        )?;
        check(
            "fast_forward",
            fast_forward,
            "finite and > playback",
            fast_forward.is_finite() && fast_forward > playback,
        )?;
        check(
            "rewind",
            rewind,
            "finite and > 0",
            rewind.is_finite() && rewind > 0.0,
        )?;
        Ok(Self {
            playback,
            fast_forward,
            rewind,
        })
    }

    /// FF and RW at `mult` times the playback rate — the paper's symmetric
    /// setting (`mult = 3` in §4).
    pub fn symmetric(mult: f64) -> Result<Self, ModelError> {
        Self::new(1.0, mult, mult)
    }

    /// The paper's §4 configuration: FF and RW at 3x playback.
    pub fn paper() -> Self {
        // vod-lint: allow(no-panic) — 3.0 is a fixed in-domain constant.
        Self::symmetric(3.0).expect("constants are valid")
    }

    /// Normal playback rate `R_PB`.
    pub fn playback(&self) -> f64 {
        self.playback
    }

    /// Fast-forward rate `R_FF`.
    pub fn fast_forward(&self) -> f64 {
        self.fast_forward
    }

    /// Rewind rate `R_RW`.
    pub fn rewind(&self) -> f64 {
        self.rewind
    }

    /// Eq. (1): `α = R_FF / (R_FF − R_PB)`.
    ///
    /// A viewer must fast-forward through `α·Δ` movie minutes to catch a
    /// normally-playing target `Δ` minutes ahead. Always `> 1`.
    pub fn alpha(&self) -> f64 {
        self.fast_forward / (self.fast_forward - self.playback)
    }

    /// Eq. (1): `γ = R_RW / (R_PB + R_RW)`.
    ///
    /// A viewer must rewind through `γ·Δ` movie minutes to meet a
    /// normally-playing target `Δ` minutes behind. Always `< 1`.
    pub fn gamma(&self) -> f64 {
        self.rewind / (self.playback + self.rewind)
    }

    /// Movie minutes a fast-forwarding viewer must sweep to catch a target
    /// currently `delta` minutes ahead (Eq. 1, FF branch).
    pub fn ff_catchup_distance(&self, delta: f64) -> f64 {
        self.alpha() * delta
    }

    /// Movie minutes a rewinding viewer must sweep to meet a target
    /// currently `delta` minutes behind (Eq. 1, RW branch).
    pub fn rw_catchup_distance(&self, delta: f64) -> f64 {
        self.gamma() * delta
    }
}

/// Static-partitioning configuration for one movie (§3.1).
///
/// * `movie_len` — `l`, movie length in minutes.
/// * `buffer` — `B`, total effective buffer in movie minutes dedicated to
///   this movie's normal playback (the paper's `B = B' − nδ`, i.e. net of
///   the per-partition safety reserve `δ`).
/// * `n_streams` — `n`, the number of I/O streams == partitions; the movie
///   restarts every `l/n` minutes.
///
/// The derived maximum batching wait is `w = (l − B)/n` (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemParams {
    movie_len: f64,
    buffer: f64,
    n_streams: u32,
    rates: Rates,
}

impl SystemParams {
    /// Construct from `(l, B, n)`. Requires `l > 0`, `0 ≤ B ≤ l`, `n ≥ 1`.
    pub fn new(
        movie_len: f64,
        buffer: f64,
        n_streams: u32,
        rates: Rates,
    ) -> Result<Self, ModelError> {
        if !(movie_len.is_finite() && movie_len > 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "movie_len",
                value: movie_len,
                requirement: "finite and > 0",
            });
        }
        if !(buffer.is_finite() && buffer >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "buffer",
                value: buffer,
                requirement: "finite and >= 0",
            });
        }
        if buffer > movie_len {
            return Err(ModelError::BufferExceedsMovie { buffer, movie_len });
        }
        if n_streams == 0 {
            return Err(ModelError::InvalidParameter {
                name: "n_streams",
                value: 0.0,
                requirement: ">= 1",
            });
        }
        Ok(Self {
            movie_len,
            buffer,
            n_streams,
            rates,
        })
    }

    /// Construct from `(l, w, n)` using Eq. (2): `B = l − n·w`.
    ///
    /// Fails when `n·w > l` (the requested wait cannot be met with `n`
    /// streams even with zero buffer).
    pub fn from_wait(
        movie_len: f64,
        max_wait: f64,
        n_streams: u32,
        rates: Rates,
    ) -> Result<Self, ModelError> {
        if !(max_wait.is_finite() && max_wait >= 0.0) {
            return Err(ModelError::InvalidParameter {
                name: "max_wait",
                value: max_wait,
                requirement: "finite and >= 0",
            });
        }
        let buffer = movie_len - n_streams as f64 * max_wait;
        if buffer < -1e-9 {
            return Err(ModelError::InvalidParameter {
                name: "max_wait",
                value: max_wait,
                requirement: "<= l/n (buffer would be negative)",
            });
        }
        Self::new(movie_len, buffer.max(0.0), n_streams, rates)
    }

    /// Movie length `l` in minutes.
    pub fn movie_len(&self) -> f64 {
        self.movie_len
    }

    /// Total effective buffer `B` in movie minutes.
    pub fn buffer(&self) -> f64 {
        self.buffer
    }

    /// Number of I/O streams / partitions `n`.
    pub fn n_streams(&self) -> u32 {
        self.n_streams
    }

    /// The display-rate configuration.
    pub fn rates(&self) -> &Rates {
        &self.rates
    }

    /// `n` as a float, for use in the continuous formulas.
    pub fn n(&self) -> f64 {
        self.n_streams as f64
    }

    /// Per-partition window length `B/n` in movie minutes.
    pub fn partition_len(&self) -> f64 {
        self.buffer / self.n()
    }

    /// Restart period `l/n`: a new I/O stream starts this often.
    pub fn restart_interval(&self) -> f64 {
        self.movie_len / self.n()
    }

    /// Maximum batching wait `w = (l − B)/n` (Eq. 2) — equivalently the
    /// inter-partition gap.
    pub fn max_wait(&self) -> f64 {
        (self.movie_len - self.buffer) / self.n()
    }

    /// True for the pure-batching degenerate case `B = 0`.
    pub fn is_pure_batching(&self) -> bool {
        vod_dist::exact_zero(self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rates_alpha_gamma() {
        let r = Rates::paper();
        // α = 3/(3−1) = 1.5, γ = 3/(1+3) = 0.75.
        assert!((r.alpha() - 1.5).abs() < 1e-15);
        assert!((r.gamma() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn catchup_distances_match_eq1() {
        let r = Rates::paper();
        // Δ = 10 minutes ahead: FF must sweep 15 movie minutes.
        assert!((r.ff_catchup_distance(10.0) - 15.0).abs() < 1e-12);
        // Δ = 10 minutes behind: RW must sweep 7.5 movie minutes.
        assert!((r.rw_catchup_distance(10.0) - 7.5).abs() < 1e-12);
    }

    #[test]
    fn rates_validation() {
        assert!(Rates::new(1.0, 1.0, 3.0).is_err()); // FF must exceed PB
        assert!(Rates::new(0.0, 3.0, 3.0).is_err());
        assert!(Rates::new(1.0, 3.0, 0.0).is_err());
        assert!(Rates::new(1.0, 2.0, 5.0).is_ok()); // asymmetric is fine
    }

    #[test]
    fn wait_buffer_duality() {
        // l = 120, n = 30, w = 1 → B = 90; round-trips through Eq. (2).
        let p = SystemParams::from_wait(120.0, 1.0, 30, Rates::paper()).unwrap();
        assert!((p.buffer() - 90.0).abs() < 1e-12);
        assert!((p.max_wait() - 1.0).abs() < 1e-12);
        assert!((p.partition_len() - 3.0).abs() < 1e-12);
        assert!((p.restart_interval() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pure_batching_from_wait() {
        // n = l/w exactly → B = 0 (paper: "corresponds to the pure batching
        // case").
        let p = SystemParams::from_wait(120.0, 2.0, 60, Rates::paper()).unwrap();
        assert!(p.is_pure_batching());
        assert_eq!(p.buffer(), 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let r = Rates::paper();
        assert!(SystemParams::new(0.0, 0.0, 1, r).is_err());
        assert!(SystemParams::new(120.0, 121.0, 4, r).is_err());
        assert!(SystemParams::new(120.0, -1.0, 4, r).is_err());
        assert!(SystemParams::new(120.0, 30.0, 0, r).is_err());
        assert!(SystemParams::from_wait(120.0, 3.0, 60, r).is_err()); // n·w > l
    }
}
