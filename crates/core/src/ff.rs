//! Fast-forward hit probability `P(hit|FF)` — paper §3.1.1–§3.1.3,
//! Eqs. (3)–(21).
//!
//! Two independent implementations are provided:
//!
//! * [`p_hit_ff`] — the paper's decomposition: within-partition hits
//!   (Eqs. 3–8), per-partition jump hits (Eqs. 9–18, summed over the range
//!   of Eq. 19 or its extension), and the FF-to-end term (Eq. 20). All
//!   inner integrals over the viewer offset `s = V_f − V_c` are reduced to
//!   closed forms in `G(y) = ∫₀^y F(αs) ds = H(αy)/α`, leaving only 1-D
//!   quadrature over `V_c`.
//! * [`p_hit_ff_direct`] — a brute-force 2-D integration of the exact
//!   conditional hit probability. Algebraically equal to the extended-mode
//!   decomposition; used by tests and the ablation bench as an oracle.
//!
//! Unit convention (DESIGN.md §3): the sampled duration `x ~ f` is the
//! *movie distance swept* by the operation; a viewer `Δ` minutes behind a
//! target needs `x = αΔ` to catch it (Eq. 1).

use vod_dist::quad::adaptive_simpson;
use vod_dist::DurationDist;

use crate::{BoundaryMode, ModelOptions, SystemParams};

/// Decomposed FF hit probability.
#[derive(Debug, Clone, PartialEq)]
pub struct FfHit {
    /// `P(hit_w|FF)`: resume within the partition that issued the FF.
    pub within: f64,
    /// `P(hit_j^i|FF)` for `i = 1, 2, …`: resume in the i-th partition
    /// ahead.
    pub jumps: Vec<f64>,
    /// `P(end)`: fast-forward reaches the end of the movie (Eq. 20); the
    /// dedicated stream is released because the viewing is over.
    pub end: f64,
}

impl FfHit {
    /// `P(hit|FF)` — Eq. (21): within + Σ jumps + end.
    pub fn total(&self) -> f64 {
        self.within + self.jumps.iter().sum::<f64>() + self.end
    }
}

/// Shared closed-form helpers over the duration distribution.
struct Kernel<'a> {
    dist: &'a dyn DurationDist,
    alpha: f64,
}

impl Kernel<'_> {
    fn f(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.dist.cdf(x)
        }
    }

    /// `H(y) = ∫₀^y F(u) du`.
    fn h(&self, y: f64) -> f64 {
        if y <= 0.0 {
            0.0
        } else {
            self.dist.cdf_integral(y)
        }
    }

    /// `G(y) = ∫₀^y F(α s) ds = H(α y)/α`.
    fn g(&self, y: f64) -> f64 {
        if y <= 0.0 {
            0.0
        } else {
            self.h(self.alpha * y) / self.alpha
        }
    }
}

/// `P(hit|FF)` via the paper's decomposition.
pub fn p_hit_ff(params: &SystemParams, dist: &dyn DurationDist, opts: &ModelOptions) -> FfHit {
    let l = params.movie_len();
    let n = params.n();
    let b = params.partition_len();
    let alpha = params.rates().alpha();
    let k = Kernel { dist, alpha };

    // Eq. (20): P(end) = ∫₀^l (1 − F(l − V_c)) (1/l) dV_c = 1 − H(l)/l.
    let end = 1.0 - k.h(l) / l;

    if b <= 0.0 {
        // Pure batching: no partitions to resume into (paper §3.1:
        // "the hit probability will always equal zero"); only the
        // end-of-movie release remains.
        return FfHit {
            within: 0.0,
            jumps: Vec::new(),
            end,
        };
    }

    // ---- Within-partition hits, Eqs. (4)–(8) ----------------------------
    // Case a (Eq. 7): V_c ∈ [0, l − αB/n]; the inner unconditioning over
    // V_f collapses to G(B/n), independent of V_c.
    let p_a = (l - alpha * b).max(0.0) * k.g(b) / (b * l);
    // Case b (Eq. 8): substituting u = l − V_c, with V_t − V_c = u/α:
    //   P_b = (1/(bl)) ∫₀^{min(l, αb)} [ H(u)/α + (b − u/α) F(u) ] du.
    let u_max = l.min(alpha * b);
    let p_b = adaptive_simpson(
        |u| k.h(u) / alpha + (b - u / alpha) * k.f(u),
        0.0,
        u_max,
        opts.tol,
    ) / (b * l);
    let within = p_a + p_b;

    // ---- Jump hits, Eqs. (9)–(19) ---------------------------------------
    let mut jumps = Vec::new();
    let i_paper_max = {
        // Eq. (19): i ≤ ⌊(n(l + wα) − lα)/(lα)⌋, computed literally.
        let w = params.max_wait();
        let raw = (n * (l + w * alpha) - l * alpha) / (l * alpha);
        // Guard fp slop at exact-integer boundaries.
        (raw + 1e-9).floor()
    };
    let mut i = 1u32;
    loop {
        let c = i as f64 * l / n; // phase offset il/n of the i-th partition
        let e4 = (l - alpha * (c - b)).clamp(0.0, l); // last V_c with any hit
        match opts.boundary {
            BoundaryMode::PaperEq19 => {
                if (i as f64) > i_paper_max {
                    break;
                }
            }
            BoundaryMode::Extended => {
                if e4 <= 0.0 {
                    break;
                }
            }
        }
        jumps.push(jump_term(&k, l, b, c, opts.tol));
        i += 1;
        if i > params.n_streams() + 4 {
            // Defensive cap: i is geometrically bounded by n/α + B/l + 1 <
            // n + 2; reaching this means a logic error upstream.
            debug_assert!(false, "jump summation failed to terminate");
            break;
        }
    }

    FfHit { within, jumps, end }
}

/// `P(hit_j^i|FF)` for one partition ahead: Eqs. (15)–(18) with every
/// `V_c` range clamped to `[0, l]`.
fn jump_term(k: &Kernel<'_>, l: f64, b: f64, c: f64, tol: f64) -> f64 {
    let alpha = k.alpha;

    // Region 1 (Eq. 15): complete hits for the full V_f range; the inner
    // integral telescopes to G(c+b) − 2G(c) + G(c−b), independent of V_c.
    let len1 = (l - alpha * (b + c)).clamp(0.0, l);
    let inner1 = (k.g(c + b) - 2.0 * k.g(c) + k.g(c - b)) / b;
    let p1 = len1 / l * inner1;

    // Regions 2+3 (Eqs. 16, 17): V_c ∈ [A2, E2], where the farthest
    // catchable viewer V_t lies inside the V_f range: m = V_t − V_c =
    // (l − V_c)/α − c ∈ [0, b]. The two inner integrals combine to
    //   G(c+m) − 2G(c) + G(c−b) + (b − m) F(l − V_c)
    // (the G(c−b+m) cross terms cancel).
    let a2 = (l - alpha * (b + c)).clamp(0.0, l);
    let e2 = (l - alpha * c).clamp(0.0, l);
    let p23 = adaptive_simpson(
        |vc| {
            let m = ((l - vc) / alpha - c).clamp(0.0, b);
            (k.g(c + m) - 2.0 * k.g(c) + k.g(c - b) + (b - m) * k.f(l - vc)) / b
        },
        a2,
        e2,
        tol,
    ) / l;

    // Region 4 (Eq. 18): only partial hits remain; V_c ∈ [E2, E4] with
    // m' = (l − V_c)/α − (c − b) ∈ [0, b]:
    //   inner = m' F(l − V_c) − (G(c−b+m') − G(c−b)).
    let e4 = (l - alpha * (c - b)).clamp(0.0, l);
    let p4 = adaptive_simpson(
        |vc| {
            let mp = ((l - vc) / alpha - (c - b)).clamp(0.0, b);
            (mp * k.f(l - vc) - (k.g(c - b + mp) - k.g(c - b))) / b
        },
        e2,
        e4,
        tol,
    ) / l;

    p1 + p23 + p4
}

/// Brute-force oracle: integrate the exact conditional hit probability
///
/// ```text
/// P(hit|FF, V_c, s) = F(min(αs, e)) + Σ_i [F(min(α(c_i+s), e)) − F(min(α(c_i+s−b), e))]
///                   + (1 − F(e)),            e = l − V_c,
/// ```
///
/// over `s ~ U[0, B/n]`, `V_c ~ U[0, l]` by 2-D quadrature. Equals
/// extended-mode [`p_hit_ff`] up to quadrature error.
pub fn p_hit_ff_direct(params: &SystemParams, dist: &dyn DurationDist, opts: &ModelOptions) -> f64 {
    let l = params.movie_len();
    let n = params.n();
    let b = params.partition_len();
    let alpha = params.rates().alpha();
    let k = Kernel { dist, alpha };

    let conditional = |vc: f64, s: f64| -> f64 {
        let e = l - vc;
        let mut total = k.f((alpha * s).min(e)) + (1.0 - k.f(e));
        let mut i = 1u32;
        loop {
            let c = i as f64 * l / n;
            let lo = alpha * (c + s - b);
            if lo >= e {
                break;
            }
            let hi = (alpha * (c + s)).min(e);
            total += k.f(hi) - k.f(lo.max(0.0).min(e));
            i += 1;
            if i > params.n_streams() + 4 {
                break;
            }
        }
        total
    };

    if b <= 0.0 {
        return adaptive_simpson(|vc| 1.0 - k.f(l - vc), 0.0, l, opts.tol) / l;
    }
    adaptive_simpson(
        |vc| adaptive_simpson(|s| conditional(vc, s), 0.0, b, opts.tol * b / l) / b,
        0.0,
        l,
        opts.tol,
    ) / l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rates;
    use vod_dist::kinds::{Deterministic, Exponential, Gamma, Uniform};

    fn params(l: f64, b: f64, n: u32) -> SystemParams {
        SystemParams::new(l, b, n, Rates::paper()).unwrap()
    }

    #[test]
    fn end_term_equals_mean_over_l_for_interior_dist() {
        // For a distribution with all mass inside [0, l]:
        // P(end) = 1 − H(l)/l = mean/l.
        let p = params(120.0, 30.0, 10);
        let d = Gamma::paper_fig7(); // mass above 120 ≈ 3e-12
        let hit = p_hit_ff(&p, &d, &ModelOptions::default());
        assert!((hit.end - 8.0 / 120.0).abs() < 1e-9, "end = {}", hit.end);
    }

    #[test]
    fn pure_batching_has_only_end_hits() {
        let p = params(120.0, 0.0, 10);
        let d = Gamma::paper_fig7();
        let hit = p_hit_ff(&p, &d, &ModelOptions::default());
        assert_eq!(hit.within, 0.0);
        assert!(hit.jumps.is_empty());
        assert!((hit.total() - hit.end).abs() < 1e-15);
    }

    #[test]
    fn total_is_probability() {
        for (l, b, n) in [
            (120.0, 30.0, 10),
            (120.0, 90.0, 30),
            (120.0, 119.0, 60),
            (60.0, 5.0, 3),
            (90.0, 45.0, 1),
        ] {
            for mode in [BoundaryMode::PaperEq19, BoundaryMode::Extended] {
                let p = params(l, b, n);
                let opts = ModelOptions {
                    boundary: mode,
                    ..Default::default()
                };
                let hit = p_hit_ff(&p, &Gamma::paper_fig7(), &opts);
                let t = hit.total();
                assert!(
                    (0.0..=1.0 + 1e-7).contains(&t),
                    "l={l} B={b} n={n} {mode:?}: total {t}"
                );
                assert!(hit.within >= -1e-12);
                assert!(hit.end >= -1e-12);
                for (i, j) in hit.jumps.iter().enumerate() {
                    assert!(*j >= -1e-9, "jump {i} = {j}");
                }
            }
        }
    }

    #[test]
    fn decomposition_matches_direct_oracle() {
        // Independent implementations must agree (Extended mode).
        let opts = ModelOptions::default();
        for (l, b, n) in [
            (120.0, 30.0, 10),
            (120.0, 60.0, 20),
            (120.0, 12.0, 40),
            (75.0, 39.0, 25),
            (60.0, 30.0, 6),
        ] {
            let p = params(l, b, n);
            for d in [
                Box::new(Gamma::paper_fig7()) as Box<dyn DurationDist>,
                Box::new(Exponential::with_mean(5.0).unwrap()),
                Box::new(Uniform::new(0.0, 16.0).unwrap()),
            ] {
                let dec = p_hit_ff(&p, d.as_ref(), &opts).total();
                let dir = p_hit_ff_direct(&p, d.as_ref(), &opts);
                assert!(
                    (dec - dir).abs() < 5e-4,
                    "l={l} B={b} n={n} {d:?}: decomposed {dec} vs direct {dir}"
                );
            }
        }
    }

    #[test]
    fn extended_mode_never_below_paper_mode() {
        // Extended mode adds non-negative partial-hit mass beyond Eq. 19.
        for (l, b, n) in [(120.0, 30.0, 10), (120.0, 80.0, 8), (90.0, 44.5, 13)] {
            let p = params(l, b, n);
            let d = Gamma::paper_fig7();
            let paper = p_hit_ff(&p, &d, &ModelOptions::paper()).total();
            let ext = p_hit_ff(&p, &d, &ModelOptions::default()).total();
            assert!(
                ext >= paper - 1e-9,
                "l={l} B={b} n={n}: ext {ext} < paper {paper}"
            );
        }
    }

    #[test]
    fn more_buffer_means_more_hits() {
        // At fixed n, increasing B grows every partition window.
        let d = Gamma::paper_fig7();
        let opts = ModelOptions::default();
        let mut prev = 0.0;
        for b in [0.0, 12.0, 30.0, 60.0, 90.0, 118.0] {
            let p = params(120.0, b, 12);
            let t = p_hit_ff(&p, &d, &opts).total();
            assert!(t >= prev - 1e-7, "B={b}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn deterministic_short_ff_always_hits_within() {
        // If every FF sweeps exactly 1 movie minute and partitions are
        // 12 minutes long, almost every viewer resumes in his own
        // partition: hit_w ≈ P[x ≤ α s] = P[s ≥ x/α = 2/3] over s~U[0,12],
        // minus the end-of-movie boundary sliver.
        let p = params(120.0, 120.0, 10); // fully buffered: b = 12, w = 0
        let d = Deterministic::new(1.0).unwrap();
        let hit = p_hit_ff(&p, &d, &ModelOptions::default());
        // s ≥ x/α = 1/1.5 = 2/3 within a 12-minute window: 1 − (2/3)/12.
        let ideal = 1.0 - (2.0 / 3.0) / 12.0;
        assert!(
            (hit.within - ideal).abs() < 0.02,
            "within {} vs ideal {ideal}",
            hit.within
        );
        // Misses can only jump or end; total stays a probability.
        assert!(hit.total() <= 1.0 + 1e-9);
    }

    #[test]
    fn asymmetric_rates_respected() {
        // Sweeping x movie minutes at rate R displaces the viewer
        // x·(1 − 1/R) = x/α relative to the co-moving partitions: a faster
        // FF gives the partitions less time to follow, so at a fixed swept
        // distance the viewer drifts *further* and exits his window more
        // often. α = R/(R−1): slow FF (R=2) ⇒ α=2; fast FF (R=8) ⇒ α=8/7.
        let d = Exponential::with_mean(8.0).unwrap();
        let opts = ModelOptions::default();
        let slow = SystemParams::new(120.0, 36.0, 12, Rates::new(1.0, 2.0, 3.0).unwrap()).unwrap();
        let fast = SystemParams::new(120.0, 36.0, 12, Rates::new(1.0, 8.0, 3.0).unwrap()).unwrap();
        let hw_slow = p_hit_ff(&slow, &d, &opts).within;
        let hw_fast = p_hit_ff(&fast, &d, &opts).within;
        assert!(
            hw_slow > hw_fast,
            "within: slow {hw_slow} should exceed fast {hw_fast}"
        );
    }
}
