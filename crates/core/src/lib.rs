//! # vod-model — analytic hit-probability model
//!
//! The primary contribution of *"Buffer and I/O Resource Pre-allocation
//! for Implementing Batching and Buffering Techniques for Video-on-Demand
//! Systems"* (Leung, Lui & Golubchik, ICDE 1997): given a movie served by
//! `n` periodically restarted I/O streams with a static buffer partition of
//! `B/n` movie minutes behind each, compute the probability that a viewer
//! returning from a VCR operation (fast-forward, rewind, pause) *resumes
//! inside some partition* — a **hit** — so that the dedicated I/O stream
//! allocated for the VCR operation can be released.
//!
//! ```
//! use vod_dist::kinds::Gamma;
//! use vod_model::{p_hit_single_dist, ModelOptions, Rates, SystemParams, VcrMix};
//!
//! // The paper's Figure-7 setting: l = 120 min, FF/RW at 3x,
//! // VCR durations ~ Gamma(shape 2, scale 4) (mean 8 minutes).
//! let params = SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap();
//! let d = Gamma::paper_fig7();
//! let hit = p_hit_single_dist(&params, &d, &VcrMix::paper_fig7d(), &ModelOptions::default());
//! assert!(hit.total > 0.0 && hit.total <= 1.0);
//! ```
//!
//! The FF component implements the paper's Eqs. (3)–(21) literally; RW and
//! PAU are derived in [`rw`](p_hit_rw) and [`pause`](p_hit_pause) following
//! the same structure (the paper defers them to technical report
//! CS-TR-96-03). Each component ships a brute-force integration oracle used
//! for cross-validation, and `vod-sim` validates the whole model against a
//! discrete-event simulation of the actual system (the paper's §4).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::float_cmp))]

mod error;
mod eval;
mod ff;
mod mix;
mod options;
mod params;
mod pause;
mod piggyback;
mod rw;

pub use error::ModelError;
pub use eval::{HitMemo, SweepExecutor};
pub use ff::{p_hit_ff, p_hit_ff_direct, FfHit};
pub use mix::{p_hit, p_hit_single_dist, HitProbability, VcrDists, VcrMix};
pub use options::{BoundaryMode, ModelOptions};
pub use params::{Rates, SystemParams};
pub use pause::{p_hit_pause, p_hit_pause_direct};
pub use piggyback::{expected_miss_hold_piggyback, expected_miss_hold_plain, merge_time};
pub use rw::{p_hit_rw, p_hit_rw_direct, RwHit};
