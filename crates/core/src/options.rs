//! Evaluation options for the analytic model.

/// How far the jump-hit summation over partitions ahead/behind extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryMode {
    /// The paper's printed cutoff (Eq. 19): sum `hit_j^i` only for `i` with
    /// `l − α(B + il)/n ≥ 0`, i.e. while a *complete* jump hit is possible
    /// from some position. Partial-only partitions beyond the cutoff are
    /// dropped, exactly as in the paper.
    PaperEq19,
    /// Extended summation: keep adding partitions while *any* (complete or
    /// partial) jump hit has positive probability, clamping every
    /// integration range to `[0, l]`. This is the natural completion of the
    /// derivation and what a simulator measures; the `fig_ablation_eq19`
    /// bench quantifies the (small) difference.
    #[default]
    Extended,
}

/// Numerical options for model evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOptions {
    /// Jump-summation range policy.
    pub boundary: BoundaryMode,
    /// Absolute tolerance handed to the quadrature routines. The default
    /// `1e-9` keeps model error far below simulation noise.
    pub tol: f64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            boundary: BoundaryMode::default(),
            tol: 1e-9,
        }
    }
}

impl ModelOptions {
    /// Options reproducing the paper's equations literally.
    pub fn paper() -> Self {
        Self {
            boundary: BoundaryMode::PaperEq19,
            ..Self::default()
        }
    }
}
