//! Parallel, deterministic sweep execution and hit-probability memoization.
//!
//! Every experiment in this repository reduces to *independent* model
//! evaluations: a Figure-7 curve evaluates `P(hit)` at each `(params, n)`
//! along the x axis, sizing a catalog evaluates each movie's feasibility
//! frontier, a φ-sweep repeats an allocation per price point. Each
//! evaluation is pure — it reads shared immutable inputs and produces an
//! `f64` (or a small struct of them) — so fanning them across threads
//! changes wall-clock time and nothing else.
//!
//! [`SweepExecutor`] encodes exactly that contract:
//!
//! * **Order-preserving**: `map` returns results in input order, so the
//!   output is *bitwise identical* to the serial loop regardless of thread
//!   count or scheduling. Workers claim items from a shared atomic cursor
//!   and tag each result with its input index; nothing about the result
//!   depends on which worker computed it.
//! * **No new dependencies**: built on [`std::thread::scope`], so borrowed
//!   inputs (movie specs, distributions, configs) can be shared without
//!   `Arc` gymnastics.
//!
//! [`HitMemo`] complements the executor on the sizing side: a feasibility
//! bisection followed by a greedy water-fill and a plan build evaluates
//! `hit_probability(n)` for overlapping sets of `n`, and a φ-sweep repeats
//! the whole thing per price point. The memo caches `n → P(hit)` for one
//! fixed `(SystemParams` family`, dist, mix, opts)` context — in sizing
//! terms, one movie under one `ModelOptions` — so each `n` is computed at
//! most once. Cached values are returned bit-for-bit, keeping memoized
//! runs identical to unmemoized ones.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker pool for independent model evaluations.
///
/// The executor is cheap to construct (threads are spawned per call, scoped
/// to it) and is therefore passed by reference down sweep APIs rather than
/// stored. Thread count `1` — or input slices with fewer than two items —
/// short-circuits to a plain serial loop with no thread machinery at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepExecutor {
    threads: usize,
}

impl Default for SweepExecutor {
    /// One worker per available core.
    fn default() -> Self {
        Self::new(0)
    }
}

impl SweepExecutor {
    /// An executor with `threads` workers; `0` means one per available
    /// core (falling back to 1 when parallelism cannot be queried).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        Self { threads }
    }

    /// The serial executor: plain in-place iteration, no worker threads.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Number of workers `map` will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Apply `f` to every item, returning results in input order.
    ///
    /// `f` must be pure with respect to the output (it may read shared
    /// state, but the result for item `i` must depend only on `items[i]`
    /// and immutable context); under that contract the result vector is
    /// bitwise identical to `items.iter().map(f).collect()` for every
    /// thread count. A panic in `f` propagates to the caller after all
    /// in-flight items finish.
    pub fn map<'items, T, R, F>(&self, items: &'items [T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'items T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n < 2 {
            return items.iter().map(f).collect();
        }
        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            local.push((i, f(&items[i])));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (i, r) in local {
                            slots[i] = Some(r);
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        slots
            .into_iter()
            // vod-lint: allow(no-panic) — the scoped workers claim each index
            // exactly once, so every slot is Some once they have joined.
            .map(|slot| slot.expect("every index claimed exactly once"))
            .collect()
    }

    /// [`map`](Self::map) for fallible evaluations: stops at the first
    /// error *in input order* (later items may still have been computed
    /// and are discarded), mirroring `items.iter().map(f).collect()`.
    pub fn try_map<'items, T, R, E, F>(&self, items: &'items [T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&'items T) -> Result<R, E> + Sync,
    {
        self.map(items, f).into_iter().collect()
    }
}

/// Memo table for `n → P(hit)` within one evaluation context.
///
/// One memo is valid for one fixed context: movie geometry and rates (the
/// `SystemParams` family parameterized by `n`), duration distribution(s),
/// VCR mix, and `ModelOptions`. Callers own that invariant — in practice a
/// memo lives next to the movie it describes and never crosses an options
/// change. Values are stored and returned bit-for-bit, so memoized and
/// unmemoized runs produce identical output.
///
/// Interior mutability (a `Mutex` around the map) lets a shared `&HitMemo`
/// serve [`SweepExecutor`] workers; the lock is held only for lookups and
/// inserts, never while computing.
#[derive(Debug, Default)]
pub struct HitMemo {
    map: Mutex<HashMap<u32, f64>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Clone for HitMemo {
    /// Clones the cached entries (statistics reset to the cloned values).
    fn clone(&self) -> Self {
        Self {
            map: Mutex::new(self.locked().clone()),
            hits: AtomicUsize::new(self.hits.load(Ordering::Relaxed)),
            misses: AtomicUsize::new(self.misses.load(Ordering::Relaxed)),
        }
    }
}

impl HitMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lock the memo table.
    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<u32, f64>> {
        // vod-lint: allow(no-panic) — a poisoned lock means another worker
        // already panicked mid-insert; propagating that panic is correct.
        self.map.lock().expect("memo poisoned")
    }

    /// Return the cached value for `n`, or run `compute`, cache its `Ok`
    /// result, and return it. Errors are not cached.
    ///
    /// Concurrent callers racing on the same uncached `n` may both run
    /// `compute`; both obtain the same value (the computation is
    /// deterministic), so the first insert wins harmlessly.
    pub fn get_or_try_insert<E>(
        &self,
        n: u32,
        compute: impl FnOnce() -> Result<f64, E>,
    ) -> Result<f64, E> {
        if let Some(&p) = self.locked().get(&n) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = compute()?;
        self.locked().entry(n).or_insert(p);
        Ok(p)
    }

    /// Number of distinct `n` values cached.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(cache hits, cache misses)` since construction — misses count
    /// actual model evaluations. Used by tests to prove work was saved.
    pub fn stats(&self) -> (usize, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let exec = SweepExecutor::new(threads);
            assert_eq!(exec.map(&items, |&x| x * x), expect, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_degenerate_inputs() {
        let exec = SweepExecutor::new(4);
        assert_eq!(exec.map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(exec.map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn try_map_reports_first_error_in_input_order() {
        let items: Vec<u32> = (0..50).collect();
        let exec = SweepExecutor::new(4);
        let got: Result<Vec<u32>, u32> =
            exec.try_map(&items, |&x| if x == 13 || x == 31 { Err(x) } else { Ok(x) });
        assert_eq!(got, Err(13));
        let ok: Result<Vec<u32>, u32> = exec.try_map(&items, |&x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(SweepExecutor::new(0).threads() >= 1);
        assert_eq!(SweepExecutor::serial().threads(), 1);
    }

    #[test]
    fn memo_caches_and_counts() {
        let memo = HitMemo::new();
        let mut evals = 0u32;
        for n in [5u32, 7, 5, 5, 7, 9] {
            let p = memo
                .get_or_try_insert(n, || {
                    evals += 1;
                    Ok::<f64, ()>(n as f64 * 0.1)
                })
                .unwrap();
            assert_eq!(p, n as f64 * 0.1);
        }
        assert_eq!(evals, 3, "each distinct n computed once");
        assert_eq!(memo.len(), 3);
        let (hits, misses) = memo.stats();
        assert_eq!((hits, misses), (3, 3));
    }

    #[test]
    fn memo_does_not_cache_errors() {
        let memo = HitMemo::new();
        let r: Result<f64, &str> = memo.get_or_try_insert(1, || Err("boom"));
        assert!(r.is_err());
        assert!(memo.is_empty());
        let r: Result<f64, &str> = memo.get_or_try_insert(1, || Ok(0.5));
        assert_eq!(r.unwrap(), 0.5);
    }

    #[test]
    fn memo_is_shareable_across_executor_workers() {
        let memo = HitMemo::new();
        let exec = SweepExecutor::new(4);
        let items: Vec<u32> = (0..40).map(|i| i % 10).collect();
        let got = exec.map(&items, |&n| {
            memo.get_or_try_insert(n, || Ok::<f64, ()>(f64::from(n).sqrt()))
                .unwrap()
        });
        for (i, &n) in items.iter().enumerate() {
            assert_eq!(got[i], f64::from(n).sqrt());
        }
        assert_eq!(memo.len(), 10);
    }
}
