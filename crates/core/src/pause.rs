//! Pause hit probability `P(hit|PAU)`.
//!
//! Like RW, the paper defers the PAU derivation to its technical report;
//! this module reconstructs it under the paper's stated conventions.
//!
//! Geometry: a paused viewer keeps his absolute position `V_c` while every
//! stream (and hence the whole partition pattern) advances at `R_PB`. In
//! the co-moving frame the viewer drifts backwards by `R_PB·x` movie
//! minutes for a pause of `x` time units. Restarts are perpetual with
//! period `T = l/n`, so the pattern seen at a fixed position is periodic:
//! with `s = V_f − V_c` the viewer resumes inside the k-th trailing window
//! iff
//!
//! ```text
//! (s + R_PB·x) mod T ∈ [0, B/n]        (k = ⌊(s + R_PB·x)/T⌋ wraps)
//! ```
//!
//! **End-of-movie boundary**: the stream covering position `V_c` at resume
//! has its front at `V_c + r` (the viewer sits `r` behind the front); if
//! that front exceeds `l` the stream has already terminated and its
//! partition is gone — a miss. This clamps the usable window to
//! `r ≤ min(B/n, l − V_c)` and is the reason the model slightly
//! *underestimates* the simulated PAU hit rate (§4 of the paper notes the
//! same for its model).
//!
//! **Wrap rule (§2.1)**: "a pause of x time units, where x > l, is
//! equivalent to a pause of x mod l" — probabilities are computed for the
//! wrapped duration, so distributions with mass above `l` fold back.

use vod_dist::quad::adaptive_simpson;
use vod_dist::DurationDist;

use crate::{ModelOptions, SystemParams};

/// `P(hit|PAU)`.
pub fn p_hit_pause(params: &SystemParams, dist: &dyn DurationDist, opts: &ModelOptions) -> f64 {
    let l = params.movie_len();
    let b = params.partition_len();
    if b <= 0.0 {
        return 0.0;
    }

    // Factor the V_c dependence: the conditional depends on V_c only via
    // β = min(b, l − V_c), so
    //   P = ((l − b)/l)·I(b) + (1/l)·∫₀^b I(u) du,
    // where I(β) is the s-averaged hit probability with usable window β.
    // I(β) is closed-form (cheap), so adaptive quadrature on the O(b/l)
    // correction term is affordable and handles atomic duration laws
    // (whose I has kinks) exactly.
    let inner = |beta: f64| inner_avg_closed_form(params, dist, beta);
    ((l - b).max(0.0) * inner(b)
        + adaptive_simpson(inner, 0.0, b.min(l), (opts.tol * l).max(1e-12)))
        / l
}

/// `I(β)` in closed form.
///
/// The s-average of the per-wrap-count hit masses reduces to `H`
/// differences (`H(y) = ∫₀^y F(u) du`):
///
/// * `k = 0` (own window): the duration interval is `[0, β − s]`, giving
///   `∫₀^β F_j(β − s) ds = H_j(β) − β F_j(0)` per fold `j`.
/// * `1 ≤ k ≤ n`: the interval is `[kT − s, min(l, kT − s + β)]`. With
///   `s* = clamp(kT + β − l, 0, b)` the upper limit is clamped to `l` for
///   `s < s*`; both pieces integrate to `H` differences.
///
/// Durations wrap mod `l` (§2.1), handled by folding the distribution:
/// `F_j(x) = F(jl + x)` summed until the tail above `jl` vanishes.
fn inner_avg_closed_form(params: &SystemParams, dist: &dyn DurationDist, beta: f64) -> f64 {
    let l = params.movie_len();
    let b = params.partition_len();
    let t = params.restart_interval();
    let n = params.n_streams();
    let pb = params.rates().playback();
    // Displacement = pb · duration: evaluate F and H at displacement/pb.
    // H_disp(y) = ∫₀^y F(u/pb) du = pb · H(y/pb).
    let f = |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            dist.cdf(x / pb)
        }
    };
    let h = |y: f64| {
        if y <= 0.0 {
            0.0
        } else {
            pb * dist.cdf_integral(y / pb)
        }
    };

    let mut acc = 0.0;
    let mut base = 0.0; // j·l of the current fold
    for _ in 0..64 {
        if 1.0 - f(base + 1e-12) <= 1e-14 && base > 0.0 {
            break;
        }
        // k = 0.
        acc += h(base + beta) - h(base) - beta * f(base);
        // k = 1..n.
        for k in 1..=n {
            let kt = k as f64 * t;
            let s_star = (kt + beta - l).clamp(0.0, b);
            // Clamped piece: s ∈ [0, s*], interval [kT − s, l].
            acc += s_star * f(base + l) - (h(base + kt) - h(base + kt - s_star));
            // Unclamped piece: s ∈ [s*, b], interval [kT − s, kT − s + β].
            acc += h(base + kt + beta - s_star) - h(base + kt + beta - b);
            acc -= h(base + kt - s_star) - h(base + kt - b);
        }
        base += l;
    }
    acc / b
}

/// `P[(R_PB·x) mod l ∈ [lo, hi]]` for `0 ≤ lo ≤ hi ≤ l`: fold the
/// distribution of the *displacement* `R_PB·x` over periods of `l`.
fn wrapped_mass(params: &SystemParams, dist: &dyn DurationDist, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let l = params.movie_len();
    let pb = params.rates().playback();
    let mut acc = 0.0;
    let mut base = 0.0;
    for _ in 0..64 {
        // Mass of displacement beyond `base`; stop once the tail is gone.
        if 1.0 - dist.cdf(base / pb) <= 1e-14 {
            break;
        }
        acc += dist.cdf((base + hi) / pb) - dist.cdf((base + lo) / pb);
        base += l;
    }
    acc
}

/// Brute-force oracle: 2-D quadrature over `(V_c, s)` without the
/// `β`-factorization. Validates the factorized fast path.
pub fn p_hit_pause_direct(
    params: &SystemParams,
    dist: &dyn DurationDist,
    opts: &ModelOptions,
) -> f64 {
    let l = params.movie_len();
    let b = params.partition_len();
    let t = params.restart_interval();
    let n = params.n_streams();
    if b <= 0.0 {
        return 0.0;
    }
    adaptive_simpson(
        |vc| {
            let beta = b.min(l - vc);
            adaptive_simpson(
                |s| {
                    let mut acc = 0.0;
                    for k in 0..=n {
                        let lo = (k as f64 * t - s).max(0.0);
                        let hi = (k as f64 * t - s + beta).min(l);
                        acc += wrapped_mass(params, dist, lo, hi);
                    }
                    acc
                },
                0.0,
                b,
                opts.tol * b / l,
            ) / b
        },
        0.0,
        l,
        opts.tol,
    ) / l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rates;
    use vod_dist::kinds::{Deterministic, Exponential, Gamma, Uniform};

    fn params(l: f64, b: f64, n: u32) -> SystemParams {
        SystemParams::new(l, b, n, Rates::paper()).unwrap()
    }

    #[test]
    fn pure_batching_is_zero() {
        let p = params(120.0, 0.0, 10);
        assert_eq!(
            p_hit_pause(&p, &Gamma::paper_fig7(), &ModelOptions::default()),
            0.0
        );
    }

    #[test]
    fn total_is_probability() {
        for (l, b, n) in [
            (120.0, 30.0, 10),
            (120.0, 90.0, 30),
            (120.0, 120.0, 60),
            (60.0, 30.0, 2),
            (90.0, 45.0, 1),
        ] {
            let p = params(l, b, n);
            let t = p_hit_pause(&p, &Gamma::paper_fig7(), &ModelOptions::default());
            assert!((0.0..=1.0 + 1e-7).contains(&t), "l={l} B={b} n={n}: {t}");
        }
    }

    #[test]
    fn factorized_matches_direct_oracle() {
        let opts = ModelOptions::default();
        for (l, b, n) in [(120.0, 30.0, 10), (120.0, 60.0, 20), (75.0, 39.0, 25)] {
            let p = params(l, b, n);
            for d in [
                Box::new(Gamma::paper_fig7()) as Box<dyn DurationDist>,
                Box::new(Exponential::with_mean(5.0).unwrap()),
                Box::new(Uniform::new(0.0, 16.0).unwrap()),
            ] {
                let fast = p_hit_pause(&p, d.as_ref(), &opts);
                let slow = p_hit_pause_direct(&p, d.as_ref(), &opts);
                assert!(
                    (fast - slow).abs() < 5e-4,
                    "l={l} B={b} n={n} {d:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn deterministic_pause_hand_computed() {
        // l=120, n=10 (T=12), B=60 (b=6), pause exactly 2 minutes.
        // Hit iff s + 2 ≤ β. For V_c ≤ 114: β=6 ⇒ P = 4/6. For V_c > 114:
        // β = l − V_c ⇒ P = (β−2)₊/6. Average:
        //   (114·(2/3) + ∫₀⁶ (u−2)₊/6 du)/120 = (76 + 8/6)/120.
        let p = params(120.0, 60.0, 10);
        let d = Deterministic::new(2.0).unwrap();
        let want = (76.0 + 8.0 / 6.0) / 120.0;
        let got = p_hit_pause(&p, &d, &ModelOptions::default());
        assert!((got - want).abs() < 1e-6, "got {got} want {want}");
    }

    #[test]
    fn pause_wraps_modulo_movie_length() {
        // §2.1: pausing l+x is the same as pausing x (streams restart
        // periodically). Compare a point mass at 10 with one at 130.
        let p = params(120.0, 60.0, 10);
        let short = p_hit_pause(
            &p,
            &Deterministic::new(10.0).unwrap(),
            &ModelOptions::default(),
        );
        let long = p_hit_pause(
            &p,
            &Deterministic::new(130.0).unwrap(),
            &ModelOptions::default(),
        );
        assert!((short - long).abs() < 1e-9, "{short} vs {long}");
    }

    #[test]
    fn full_buffer_pause_hits_except_end_boundary() {
        // B = l ⇒ windows tile the pattern completely; misses only from
        // the end-of-movie clamp. For a 2-minute pause: miss iff the
        // required front V_c + (b − r) exceeds l — a ~O(b/l) sliver.
        let p = params(120.0, 120.0, 10);
        let d = Deterministic::new(2.0).unwrap();
        let t = p_hit_pause(&p, &d, &ModelOptions::default());
        assert!(t > 0.9 && t <= 1.0 + 1e-9, "total {t}");
    }

    #[test]
    fn more_buffer_means_more_hits() {
        let d = Exponential::with_mean(5.0).unwrap();
        let opts = ModelOptions::default();
        let mut prev = 0.0;
        for b in [0.0, 12.0, 30.0, 60.0, 90.0, 120.0] {
            let t = p_hit_pause(&params(120.0, b, 12), &d, &opts);
            assert!(t >= prev - 1e-7, "B={b}: {t} < {prev}");
            prev = t;
        }
    }
}
