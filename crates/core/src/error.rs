//! Error type for model construction.

/// Errors produced when building model parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A numeric parameter violated its domain requirement.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// The buffer size exceeds what the movie length and stream count
    /// admit (`B > l`), or equivalently the requested maximum wait is
    /// negative.
    BufferExceedsMovie {
        /// Requested buffer size in movie minutes.
        buffer: f64,
        /// Movie length in minutes.
        movie_len: f64,
    },
    /// The VCR-type probabilities do not form a distribution.
    BadMix {
        /// Sum of the supplied probabilities.
        sum: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "parameter `{name}` = {value} must be {requirement}"),
            ModelError::BufferExceedsMovie { buffer, movie_len } => write!(
                f,
                "buffer B = {buffer} min exceeds movie length l = {movie_len} min"
            ),
            ModelError::BadMix { sum } => {
                write!(f, "VCR mix probabilities sum to {sum}, expected 1")
            }
        }
    }
}

impl std::error::Error for ModelError {}
