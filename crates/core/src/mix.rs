//! VCR request mix and the combined hit probability (§3.1.4, Eq. 22).

use vod_dist::DurationDist;

use crate::{
    p_hit_ff, p_hit_pause, p_hit_rw, FfHit, ModelError, ModelOptions, RwHit, SystemParams,
};

/// Probabilities that a VCR request is FF / RW / PAU (`P_FF`, `P_RW`,
/// `P_PAU` in the paper). Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcrMix {
    ff: f64,
    rw: f64,
    pause: f64,
}

impl VcrMix {
    /// Construct a mix; each probability must be in `[0, 1]` and they must
    /// sum to 1 (within 1e-9).
    pub fn new(ff: f64, rw: f64, pause: f64) -> Result<Self, ModelError> {
        for (name, v) in [("ff", ff), ("rw", rw), ("pause", pause)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(ModelError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "in [0, 1]",
                });
            }
        }
        let sum = ff + rw + pause;
        if (sum - 1.0).abs() > 1e-9 {
            return Err(ModelError::BadMix { sum });
        }
        Ok(Self { ff, rw, pause })
    }

    /// Only fast-forward requests (Figure 7a).
    pub fn ff_only() -> Self {
        Self {
            ff: 1.0,
            rw: 0.0,
            pause: 0.0,
        }
    }

    /// Only rewind requests (Figure 7b).
    pub fn rw_only() -> Self {
        Self {
            ff: 0.0,
            rw: 1.0,
            pause: 0.0,
        }
    }

    /// Only pause requests (Figure 7c).
    pub fn pause_only() -> Self {
        Self {
            ff: 0.0,
            rw: 0.0,
            pause: 1.0,
        }
    }

    /// The paper's mixed workload (Figure 7d): `P_FF = 0.2`, `P_RW = 0.2`,
    /// `P_PAU = 0.6`.
    pub fn paper_fig7d() -> Self {
        Self {
            ff: 0.2,
            rw: 0.2,
            pause: 0.6,
        }
    }

    /// `P_FF`.
    pub fn ff(&self) -> f64 {
        self.ff
    }

    /// `P_RW`.
    pub fn rw(&self) -> f64 {
        self.rw
    }

    /// `P_PAU`.
    pub fn pause(&self) -> f64 {
        self.pause
    }
}

/// Per-VCR-type duration distributions. The paper's experiments use a
/// single law for all three types, but the model is agnostic.
#[derive(Clone, Copy)]
pub struct VcrDists<'a> {
    /// Distribution of FF sweep distances.
    pub ff: &'a dyn DurationDist,
    /// Distribution of RW sweep distances.
    pub rw: &'a dyn DurationDist,
    /// Distribution of pause durations.
    pub pause: &'a dyn DurationDist,
}

impl<'a> VcrDists<'a> {
    /// Use the same distribution for all three VCR types (the paper's §4
    /// setting).
    pub fn uniform(dist: &'a dyn DurationDist) -> Self {
        Self {
            ff: dist,
            rw: dist,
            pause: dist,
        }
    }
}

impl std::fmt::Debug for VcrDists<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VcrDists")
            .field("ff", &self.ff)
            .field("rw", &self.rw)
            .field("pause", &self.pause)
            .finish()
    }
}

/// Fully decomposed hit probability for a system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HitProbability {
    /// FF decomposition (`None` when `P_FF = 0`, not evaluated).
    pub ff: Option<FfHit>,
    /// RW decomposition (`None` when `P_RW = 0`).
    pub rw: Option<RwHit>,
    /// PAU hit probability (`None` when `P_PAU = 0`).
    pub pause: Option<f64>,
    /// Eq. (22): `P(hit) = P(hit|FF)P_FF + P(hit|RW)P_RW + P(hit|PAU)P_PAU`.
    pub total: f64,
}

/// Evaluate Eq. (22) for a mix with per-type duration distributions.
///
/// Components whose mix probability is zero are skipped entirely (their
/// entry is `None`), which keeps single-VCR-type sweeps cheap.
pub fn p_hit(
    params: &SystemParams,
    dists: &VcrDists<'_>,
    mix: &VcrMix,
    opts: &ModelOptions,
) -> HitProbability {
    let ff = (mix.ff() > 0.0).then(|| p_hit_ff(params, dists.ff, opts));
    let rw = (mix.rw() > 0.0).then(|| p_hit_rw(params, dists.rw, opts));
    let pause = (mix.pause() > 0.0).then(|| p_hit_pause(params, dists.pause, opts));
    let total = ff.as_ref().map_or(0.0, |h| h.total()) * mix.ff()
        + rw.as_ref().map_or(0.0, |h| h.total()) * mix.rw()
        + pause.unwrap_or(0.0) * mix.pause();
    HitProbability {
        ff,
        rw,
        pause,
        total,
    }
}

/// Convenience for the common "one distribution for every VCR type" case.
pub fn p_hit_single_dist(
    params: &SystemParams,
    dist: &dyn DurationDist,
    mix: &VcrMix,
    opts: &ModelOptions,
) -> HitProbability {
    p_hit(params, &VcrDists::uniform(dist), mix, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rates;
    use vod_dist::kinds::{Exponential, Gamma};

    fn params() -> SystemParams {
        SystemParams::new(120.0, 60.0, 20, Rates::paper()).unwrap()
    }

    #[test]
    fn mix_validation() {
        assert!(VcrMix::new(0.2, 0.2, 0.6).is_ok());
        assert!(VcrMix::new(0.5, 0.5, 0.5).is_err());
        assert!(VcrMix::new(-0.1, 0.5, 0.6).is_err());
        assert!(VcrMix::new(f64::NAN, 0.5, 0.5).is_err());
    }

    #[test]
    fn paper_mix_constants() {
        let m = VcrMix::paper_fig7d();
        assert_eq!((m.ff(), m.rw(), m.pause()), (0.2, 0.2, 0.6));
    }

    #[test]
    fn eq22_is_convex_combination() {
        let p = params();
        let d = Gamma::paper_fig7();
        let opts = ModelOptions::default();
        let ff = p_hit_single_dist(&p, &d, &VcrMix::ff_only(), &opts).total;
        let rw = p_hit_single_dist(&p, &d, &VcrMix::rw_only(), &opts).total;
        let pa = p_hit_single_dist(&p, &d, &VcrMix::pause_only(), &opts).total;
        let mixed = p_hit_single_dist(&p, &d, &VcrMix::paper_fig7d(), &opts).total;
        let want = 0.2 * ff + 0.2 * rw + 0.6 * pa;
        assert!((mixed - want).abs() < 1e-12, "{mixed} vs {want}");
    }

    #[test]
    fn zero_weight_components_skipped() {
        let p = params();
        let d = Gamma::paper_fig7();
        let out = p_hit_single_dist(&p, &d, &VcrMix::ff_only(), &ModelOptions::default());
        assert!(out.ff.is_some());
        assert!(out.rw.is_none());
        assert!(out.pause.is_none());
    }

    #[test]
    fn per_type_distributions_honored() {
        let p = params();
        let short = Exponential::with_mean(1.0).unwrap();
        let long = Exponential::with_mean(30.0).unwrap();
        let opts = ModelOptions::default();
        let mix = VcrMix::new(1.0, 0.0, 0.0).unwrap();
        let short_ff = p_hit(
            &p,
            &VcrDists {
                ff: &short,
                rw: &long,
                pause: &long,
            },
            &mix,
            &opts,
        )
        .total;
        let long_ff = p_hit(
            &p,
            &VcrDists {
                ff: &long,
                rw: &short,
                pause: &short,
            },
            &mix,
            &opts,
        )
        .total;
        // Short sweeps nearly always stay in the window.
        assert!(short_ff > long_ff, "{short_ff} vs {long_ff}");
    }
}
