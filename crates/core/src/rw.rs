//! Rewind hit probability `P(hit|RW)`.
//!
//! The paper derives `P(hit|FF)` in full and defers RW to technical report
//! CS-TR-96-03; this module reconstructs the derivation with the same
//! structure and assumptions (uniform `s = V_f − V_c` in `[0, B/n]`,
//! uniform `V_c` in `[0, l]`).
//!
//! Geometry: a rewind that sweeps `x` movie minutes takes `x/R_RW` real
//! minutes, during which every partition advances by `x·R_PB/R_RW`; the
//! viewer's displacement *relative to the co-moving partition pattern* is
//! therefore `x/γ` backwards, with `γ = R_RW/(R_PB + R_RW)` (Eq. 1).
//!
//! * **Within-partition** (`hit_w`): the viewer exits his window through
//!   the trailing edge after a relative displacement of `V_c − V_l =
//!   B/n − s`, i.e. stays inside iff `x ≤ γ(B/n − s)`.
//! * **Jump to the i-th partition behind** (`hit_j^i`): the window spans
//!   relative displacements `[γ(il/n − s), γ(il/n − s) + γB/n]`. Because
//!   restarts are perpetual, trailing partitions always exist.
//! * **Movie-start boundary**: the viewer cannot rewind below position 0;
//!   a sweep that would reach the start before the catch-up point is a
//!   *miss* (`x ≤ V_c` required). This is exactly the convention §4 of the
//!   paper attributes to its model ("we assume that a miss occurs in this
//!   case"), and is why the model slightly underestimates the simulated RW
//!   hit rate near the beginning of the movie. There is no analogue of the
//!   FF `P(end)` bonus term.

use vod_dist::quad::adaptive_simpson;
use vod_dist::DurationDist;

use crate::{ModelOptions, SystemParams};

/// Decomposed RW hit probability.
#[derive(Debug, Clone, PartialEq)]
pub struct RwHit {
    /// Resume within the partition that issued the RW.
    pub within: f64,
    /// Resume in the i-th partition *behind*, `i = 1, 2, …`.
    pub jumps: Vec<f64>,
}

impl RwHit {
    /// `P(hit|RW)`: within + Σ jumps.
    pub fn total(&self) -> f64 {
        self.within + self.jumps.iter().sum::<f64>()
    }
}

/// `P(hit|RW)` via the closed-form decomposition.
pub fn p_hit_rw(params: &SystemParams, dist: &dyn DurationDist, opts: &ModelOptions) -> RwHit {
    let l = params.movie_len();
    let n = params.n();
    let b = params.partition_len();
    let gamma = params.rates().gamma();

    if b <= 0.0 {
        return RwHit {
            within: 0.0,
            jumps: Vec::new(),
        };
    }

    let f = |x: f64| if x <= 0.0 { 0.0 } else { dist.cdf(x) };
    let h = |y: f64| if y <= 0.0 { 0.0 } else { dist.cdf_integral(y) };

    // ---- Within-partition -----------------------------------------------
    // P(hit_w|RW, V_c, s) = F(min(γ(b − s), V_c)). Unconditioning over
    // s ~ U[0,b] (substituting r = b − s) and then V_c ~ U[0,l]:
    //   for V_c ≥ γb the s-average is H(γb)/(γb);
    //   for V_c < γb it is (H(V_c)/γ + (b − V_c/γ) F(V_c))/b.
    let within = ((l - gamma * b).max(0.0) * h(gamma * b) / gamma
        + adaptive_simpson(
            |v| h(v) / gamma + (b - v / gamma) * f(v),
            0.0,
            l.min(gamma * b),
            opts.tol,
        ))
        / (b * l);

    // ---- Jumps to partitions behind ---------------------------------------
    // For the i-th partition behind (phase c = il/n), conditional on s the
    // sweep must land in [lb, lb + γb] with lb = γ(c − s), and the movie
    // start clamps everything at V_c:
    //   ∫₀^l [F(min(lb+γb, V_c)) − F(min(lb, V_c))] dV_c = J(lb+γb) − J(lb),
    //   J(K) = H(min(K, l)) + (l − K)₊ F(K).
    let j = |kk: f64| h(kk.min(l)) + (l - kk).max(0.0) * f(kk);
    let mut jumps = Vec::new();
    // The i-th partition contributes only while γ(il/n − b) < l, i.e.
    // i < n/γ + B/l. Unlike FF's α ≥ 1, γ = R_RW/(R_PB + R_RW) can be
    // arbitrarily close to 0 (slow rewind), so the cap must scale with
    // 1/γ rather than assume γ ≥ ½.
    let i_cap = ((n / gamma + (b * n) / l).ceil() + 4.0).min(u32::MAX as f64) as u32;
    let mut i = 1u32;
    loop {
        let c = i as f64 * l / n;
        // Smallest lb over s∈[0,b] is γ(c−b); once it reaches l no viewer
        // position allows the catch-up.
        if gamma * (c - b) >= l {
            break;
        }
        let term = adaptive_simpson(
            |s| {
                let lb = gamma * (c - s);
                j(lb + gamma * b) - j(lb)
            },
            0.0,
            b,
            opts.tol,
        ) / (b * l);
        jumps.push(term);
        i += 1;
        if i > i_cap {
            debug_assert!(false, "RW jump summation failed to terminate");
            break;
        }
    }

    RwHit { within, jumps }
}

/// Brute-force 2-D oracle for `P(hit|RW)`; equals [`p_hit_rw`] up to
/// quadrature error. Used by tests and the ablation bench.
pub fn p_hit_rw_direct(params: &SystemParams, dist: &dyn DurationDist, opts: &ModelOptions) -> f64 {
    let l = params.movie_len();
    let n = params.n();
    let b = params.partition_len();
    let gamma = params.rates().gamma();
    if b <= 0.0 {
        return 0.0;
    }
    let f = |x: f64| if x <= 0.0 { 0.0 } else { dist.cdf(x) };
    // Same 1/γ-scaled bound as in `p_hit_rw`: lb = γ(c − s) reaches vc ≤ l
    // no later than i = n/γ + B/l.
    let i_cap = ((n / gamma + (b * n) / l).ceil() + 4.0).min(u32::MAX as f64) as u32;

    let conditional = |vc: f64, s: f64| -> f64 {
        let mut total = f((gamma * (b - s)).min(vc));
        let mut i = 1u32;
        loop {
            let c = i as f64 * l / n;
            let lb = gamma * (c - s);
            if lb >= vc {
                break;
            }
            total += f((lb + gamma * b).min(vc)) - f(lb);
            i += 1;
            if i > i_cap {
                break;
            }
        }
        total
    };

    adaptive_simpson(
        |vc| adaptive_simpson(|s| conditional(vc, s), 0.0, b, opts.tol * b / l) / b,
        0.0,
        l,
        opts.tol,
    ) / l
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rates;
    use vod_dist::kinds::{Deterministic, Exponential, Gamma, Uniform};

    fn params(l: f64, b: f64, n: u32) -> SystemParams {
        SystemParams::new(l, b, n, Rates::paper()).unwrap()
    }

    #[test]
    fn pure_batching_is_zero() {
        let p = params(120.0, 0.0, 10);
        let hit = p_hit_rw(&p, &Gamma::paper_fig7(), &ModelOptions::default());
        assert_eq!(hit.total(), 0.0);
    }

    #[test]
    fn total_is_probability() {
        for (l, b, n) in [
            (120.0, 30.0, 10),
            (120.0, 90.0, 30),
            (120.0, 119.0, 60),
            (60.0, 30.0, 2),
            (90.0, 45.0, 1),
        ] {
            let p = params(l, b, n);
            let t = p_hit_rw(&p, &Gamma::paper_fig7(), &ModelOptions::default()).total();
            assert!((0.0..=1.0 + 1e-7).contains(&t), "l={l} B={b} n={n}: {t}");
        }
    }

    #[test]
    fn decomposition_matches_direct_oracle() {
        let opts = ModelOptions::default();
        for (l, b, n) in [
            (120.0, 30.0, 10),
            (120.0, 60.0, 20),
            (75.0, 39.0, 25),
            (60.0, 30.0, 6),
        ] {
            let p = params(l, b, n);
            for d in [
                Box::new(Gamma::paper_fig7()) as Box<dyn DurationDist>,
                Box::new(Exponential::with_mean(5.0).unwrap()),
                Box::new(Uniform::new(0.0, 16.0).unwrap()),
            ] {
                let dec = p_hit_rw(&p, d.as_ref(), &opts).total();
                let dir = p_hit_rw_direct(&p, d.as_ref(), &opts);
                assert!(
                    (dec - dir).abs() < 5e-4,
                    "l={l} B={b} n={n} {d:?}: decomposed {dec} vs direct {dir}"
                );
            }
        }
    }

    #[test]
    fn more_buffer_means_more_hits() {
        let d = Exponential::with_mean(5.0).unwrap();
        let opts = ModelOptions::default();
        let mut prev = 0.0;
        for b in [0.0, 12.0, 30.0, 60.0, 90.0, 118.0] {
            let t = p_hit_rw(&params(120.0, b, 12), &d, &opts).total();
            assert!(t >= prev - 1e-7, "B={b}: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn full_buffer_rewind_hits_almost_surely() {
        // With w = 0 the windows tile the whole movie, so only the
        // movie-start boundary produces misses. Short deterministic
        // rewinds then hit unless V_c < x.
        let p = params(120.0, 120.0, 10);
        let d = Deterministic::new(1.0).unwrap();
        let t = p_hit_rw(&p, &d, &ModelOptions::default()).total();
        // Exact: miss iff V_c < 1 → P(hit) = 1 − 1/120 ≈ 0.99167.
        assert!((t - (1.0 - 1.0 / 120.0)).abs() < 1e-6, "total {t}");
    }

    #[test]
    fn short_rewinds_mostly_stay_within() {
        // Sweeping 1 minute with b = 12, γ = 0.75: stays within iff
        // s ≤ b − x/γ = 12 − 4/3, plus V_c ≥ 1.
        let p = params(120.0, 120.0, 10);
        let d = Deterministic::new(1.0).unwrap();
        let hit = p_hit_rw(&p, &d, &ModelOptions::default());
        // min(γ(b−s), V_c) ≥ 1 iff both factors are ≥ 1, and s, V_c are
        // independent: P[s ≤ 12 − 4/3] · P[V_c ≥ 1].
        let ideal = (1.0 - (4.0 / 3.0) / 12.0) * (119.0 / 120.0);
        assert!(
            (hit.within - ideal).abs() < 1e-6,
            "within {} vs {ideal}",
            hit.within
        );
        assert!(hit.total() <= 1.0 + 1e-9);
    }

    #[test]
    fn rewind_rate_direction() {
        // Faster rewind ⇒ γ closer to 1 ⇒ at fixed swept distance the
        // relative backwards drift x/γ is *smaller* ⇒ more within-hits.
        let d = Exponential::with_mean(8.0).unwrap();
        let opts = ModelOptions::default();
        let slow = SystemParams::new(120.0, 36.0, 12, Rates::new(1.0, 3.0, 1.0).unwrap()).unwrap();
        let fast = SystemParams::new(120.0, 36.0, 12, Rates::new(1.0, 3.0, 9.0).unwrap()).unwrap();
        let w_slow = p_hit_rw(&slow, &d, &opts).within;
        let w_fast = p_hit_rw(&fast, &d, &opts).within;
        assert!(w_fast > w_slow, "fast {w_fast} <= slow {w_slow}");
    }
}
